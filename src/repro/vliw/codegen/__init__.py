"""Pluggable codegen for the packet-compiled execution pipeline.

The platform executes a translated program through a three-stage
pipeline (see ``docs/ir.md`` and ``docs/backends.md``):

1. binary translation (``repro.translator``) — target binary to
   cycle-annotated :class:`~repro.isa.c6x.packets.C6xProgram`;
2. lowering (:mod:`repro.vliw.codegen.lower`) — packet regions to the
   typed Region IR of :mod:`repro.vliw.codegen.ir`;
3. emission — Region IR to executable host code through a
   :class:`RegionEmitter` (:mod:`~repro.vliw.codegen.emit_python`
   renders everything; :mod:`~repro.vliw.codegen.emit_c` renders pure
   regions to C99 compiled at run time, see
   :mod:`~repro.vliw.codegen.native`).

This package is also the **single registry of execution backends**:
:class:`~repro.vliw.platform.PrototypingPlatform`,
:class:`~repro.vliw.multicore.MultiCoreSoC`, the evaluation runners and
every CLI resolve backend names through :func:`resolve_backend`, so a
new backend registered here is immediately selectable everywhere — and
an unknown name fails with the registered list instead of a bare
``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import SimulationError
from repro.vliw.codegen.ir import RegionIR
from repro.vliw.codegen.tiering import TierConfig

__all__ = ["BackendSpec", "RegionEmitter", "TierConfig",
           "backend_names", "register_backend", "resolve_backend"]


class RegionEmitter(Protocol):
    """The contract stage-3 code generators implement.

    An emitter renders one lowered :class:`~repro.vliw.codegen.ir.RegionIR`
    to host code.  It may be *partial*: returning ``None`` from
    :meth:`emit` declines the region, and the compiler falls back to
    the reference Python emitter for it — which is how the native
    backend skips device regions without giving up the rest of the
    program.
    """

    #: short emitter name (diagnostics, cache keys)
    name: str

    def emit(self, ir: RegionIR) -> tuple[str, str] | None:
        """Render *ir*; returns ``(source, symbol)`` or ``None``."""
        ...


@dataclass(frozen=True)
class BackendSpec:
    """One registered execution backend."""

    name: str
    summary: str
    #: False: the interpretive core runs every packet (no compiler)
    compiled: bool
    #: True: pure regions additionally lower to native code at run time
    native: bool = False
    #: True: profile-guided tier ladder (interp -> Python emitter ->
    #: native superblocks), thresholds from
    #: :class:`~repro.vliw.codegen.tiering.TierConfig`
    tiered: bool = False


#: the backend registry; insertion order is presentation order
_BACKENDS: dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register an execution backend (idempotent by name)."""
    existing = _BACKENDS.get(spec.name)
    if existing is not None and existing != spec:
        raise SimulationError(
            f"conflicting registration for backend {spec.name!r}")
    _BACKENDS[spec.name] = spec
    return spec


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_BACKENDS)


def resolve_backend(name: str) -> BackendSpec:
    """Look up a backend by name, or fail with the registered list."""
    spec = _BACKENDS.get(name)
    if spec is None:
        raise SimulationError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{', '.join(_BACKENDS)}")
    return spec


register_backend(BackendSpec(
    name="interp",
    summary="reference semantics: C6xCore.step_packet per packet",
    compiled=False))
register_backend(BackendSpec(
    name="compiled",
    summary="packet regions lowered to Region IR, emitted as "
            "specialized host Python",
    compiled=True))
register_backend(BackendSpec(
    name="native",
    summary="pure packet regions emitted as C99 and compiled at run "
            "time (cffi/ctypes); Python emitter for device regions "
            "and hosts without a C compiler",
    compiled=True, native=True))
register_backend(BackendSpec(
    name="tiered",
    summary="profile-guided tier ladder: regions start on the "
            "interpretive core, promote to the Python emitter and "
            "then to native superblocks as they get hot "
            "(REPRO_TIER_* knobs)",
    compiled=True, tiered=True))
