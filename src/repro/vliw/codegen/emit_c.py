"""C emitter: renders Region IR to C99 superblocks for the native backend.

The third pipeline stage, natively: regions are grouped into
**superblocks** by the trace-formation pass
(:mod:`repro.vliw.codegen.trace`) and each superblock compiles to one C
function operating **in place** on the core's register file and data
memory, with everything else crossing a fixed ABI struct (``rio_t``)
that a thin Python wrapper (:mod:`repro.vliw.codegen.native`) applies.

Inside a superblock every member region is a labelled block; chain
edges between members are direct ``goto``\\ s (indirect branches go
through an in-function ``switch`` dispatch over entry packet indices),
so whole hot traces — including self-chaining loop regions — execute
in a single C call.  The sync-device mirror and the in-flight
writeback set stay resident in the ABI struct across those internal
edges (``_sb_flight`` rebases the writebacks exactly the way the
Python wrapper used to between calls); they are flushed back to Python
only when the function returns: on bail, halt, interp hand-off, an
exit edge leaving the superblock, or **lockstep-quantum expiry** — a
budget check at every internal chain edge reproduces ``run_slice``'s
region-boundary quantum test bit for bit, so multi-core lockstep and
contention contracts are untouched.

What runs in C:

* all register arithmetic, plain loads/stores (with the interpreter
  bail on range misses), zero-delay forwarding, predication, halt and
  branch logic — including indirect-branch resolution through the
  program's landing map shipped as sorted arrays (binary search);
* the **synchronization device**: its whole state machine (pending
  main/correction counts, the fractional-rate accumulator, emulated
  cycle and statistics counters) is mirrored in the ABI struct, so the
  cycle-annotation packets that begin and end every translated block
  at detail levels >= 1 — sync-window stores, blocking status reads,
  the stall loop, batched ``tick_n`` advances — execute natively and
  bit-identically (same IEEE-754 doubles, same truncating casts);
* each region exit's precomputed :class:`~repro.vliw.codegen.ir.Epilogue`:
  run-time counters, delay-slot writeback spills and the pending
  branch are reported through the struct; static counter prefixes are
  applied by the wrapper from IR-derived tables.

What does not, by design:

* **bus-bridge traffic** (UART, timers, the exit device, the shared
  multi-core segment — which lives inside the bridge window) reaches
  Python peripherals, monitors and the arbiter, so every device packet
  pre-checks all its access addresses against the bridge window —
  before any effect applies, the same way the Python emitter's
  shared-segment guard works — and **bails the packet to the
  interpreter** when one lands there.  This subsumes the shared-window
  guard, preserving the multi-core lockstep contract unchanged.  A
  device store whose address depends on a same-packet result cannot be
  pre-checked and bails unconditionally;
* regions the emitter declines (none today — the op set is closed) and
  entries discovered only at run time render through the Python
  emitter; regions that bail persistently (a UART loop hammering the
  bridge window) are swapped for their Python rendering at run time by
  the wrapper, so the native backend never loses to the packet
  compiler on device-heavy code.

Error paths (bus errors, sync protocol violations, unresolvable
indirect branches) return a typed error kind plus context; the wrapper
re-raises the interpreter's exact exception.  As documented for the
packet-compiled backend, no result is produced on those paths.

C correctness notes: all arithmetic is done in ``uint32_t`` (defined
wrap-around); signed ops go through ``int32_t`` casts with products
widened to ``int64_t`` (32x32 multiply overflow is UB in C, defined in
the reference semantics); memory accesses compose bytes explicitly, so
the generated code is endian-independent; address range checks compute
offsets in ``int64_t`` to keep window comparisons exact.
"""

from __future__ import annotations

from repro.isa.c6x.instructions import TOp
from repro.utils.bits import s32, u32
from repro.vliw.codegen.ir import (
    AluOp,
    BranchEnd,
    CutEnd,
    DeviceLoad,
    DeviceStore,
    Epilogue,
    HaltOp,
    IndirectBranch,
    InterpEnd,
    PacketIR,
    PlainLoad,
    PlainStore,
    RegionIR,
    RegWrite,
)
from repro.vliw.codegen.trace import ModulePlan, SuperblockPlan, form_traces
from repro.vliw.core import _LOAD_SIZE, BRIDGE_WINDOW as _BRIDGE_WINDOW
from repro.vliw.syncdev import (
    REG_CMD,
    REG_CORR_CMD,
    REG_CORR_STATUS,
    REG_STATUS,
    SYNC_WINDOW,
)

#: ABI revision — part of the shared-object cache key; bump on any
#: change to ``rio_t`` or the calling convention.  Rev 3: superblock
#: ABI (resident in-flight set, budget, accumulated totals, demotion
#: bitmap, dirty block-site counters).
ABI_VERSION = 3

#: fixed array capacities of the ABI struct
IN_MAX = 64  # >= register-file size (model caps at 2 x 32)
SPILL_MAX = 64

#: exit kinds reported by a superblock function
KIND_CHAIN = 0  # continue at ``next_pc`` (branch taken / fall-through)
KIND_INTERP = 1  # region end only the interpreter can follow
KIND_BAIL = 2  # current packet must re-execute on the interpreter
KIND_HALT = 3  # the core halted
#: error kinds (>= KIND_ERROR_BASE): the wrapper re-raises the
#: interpreter's exception after applying the totals of the internally
#: chained regions that *did* complete; the erroring region itself
#: contributed nothing (same contract as the packet-compiled backend)
KIND_ERROR_BASE = 4
KIND_BADBRANCH = 4  # indirect branch to an untranslated address (aux)
KIND_BUSERR_LOAD = 5  # load outside every window (aux = address)
KIND_BUSERR_STORE = 6  # store outside every window (aux = address)
KIND_SYNC_BADWRITE = 7  # invalid sync register write (aux = offset)
KIND_SYNC_BADREAD = 8  # invalid sync register read (aux = offset)
KIND_SYNC_PROTO_MAIN = 9  # main-channel protocol violation
KIND_SYNC_PROTO_CORR = 10  # correction-channel protocol violation
KIND_INFLIGHT_OVF = 11  # in-flight set overflowed IN_MAX (WAW hazard)

#: the ABI struct, shared verbatim between the generated C, the cffi
#: cdef and the ctypes mirror (see ``native.py``).  The sync_* block
#: mirrors :class:`~repro.vliw.syncdev.SyncDevice` state; the wrapper
#: loads it before the call and stores it back after (all paths,
#: including errors — the device mutates exactly as far as the
#: interpreter's would).  Superblock fields: ``sb_pc`` carries the
#: entry packet index in and the exiting (bail-attributed) member's
#: entry index out; ``budget`` is the remaining lockstep quantum in
#: target cycles; the ``*_total`` counters accumulate across the
#: internally chained regions of one call; ``sb_off`` is the
#: module-wide per-member demotion bitmap; ``blk``/``blk_dirty`` are
#: the module-wide block-site counters plus the dirty list
#: (``blocks_done`` counts dirty sites) the wrapper folds into
#: ``CoreStats.block_executions``.
RIO_STRUCT = f"""\
typedef struct {{
    int32_t in_n;
    int32_t in_reg[{IN_MAX}];
    int32_t in_mat[{IN_MAX}];
    uint32_t in_val[{IN_MAX}];
    int32_t a2p_n;
    const uint32_t *a2p_addr;
    const int32_t *a2p_idx;
    const uint8_t *sb_off;
    int64_t *blk;
    int32_t *blk_dirty;
    int32_t kind;
    int32_t next_pc;
    int32_t sb_pc;
    uint32_t aux;
    int32_t blocks_done;
    int32_t n_spill;
    int32_t spill_reg[{SPILL_MAX}];
    int32_t spill_mat[{SPILL_MAX}];
    uint32_t spill_val[{SPILL_MAX}];
    int32_t pb;
    int32_t pb_mat;
    int32_t pb_target;
    int64_t budget;
    int64_t executed_total;
    int64_t instr_total;
    int64_t nop_total;
    int64_t src_total;
    int64_t sync_stall;
    double sync_rate;
    double sync_acc;
    int64_t sync_pending_main;
    int64_t sync_pending_corr;
    int64_t sync_emulated;
    int64_t sync_blocks_started;
    int64_t sync_corrections_started;
    int64_t sync_cycles_generated;
    int64_t sync_corr_cycles_generated;
}} rio_t;
"""

_PRELUDE = f"""\
#include <stdint.h>

{RIO_STRUCT}
static int32_t _a2p_find(const rio_t *io, uint32_t addr) {{
    int32_t lo = 0, hi = io->a2p_n - 1;
    while (lo <= hi) {{
        int32_t mid = (lo + hi) >> 1;
        uint32_t probe = io->a2p_addr[mid];
        if (probe == addr) return io->a2p_idx[mid];
        if (probe < addr) lo = mid + 1; else hi = mid - 1;
    }}
    return -1;
}}

static void _spill(rio_t *io, int32_t r, int32_t m, uint32_t v) {{
    io->spill_reg[io->n_spill] = r;
    io->spill_mat[io->n_spill] = m;
    io->spill_val[io->n_spill] = v;
    io->n_spill++;
}}

/* Rebase the resident in-flight writeback set across a region exit:
   drop entries that matured inside the region just executed (its
   commit sections already applied them, up to the entry window),
   shift the survivors to the new issue origin and fold in the spills.
   Mirrors the drop-then-respill dance the Python wrapper performs
   between per-region calls.  Returns 1 on overflow (two writes to one
   register in flight at once — a WAW scheduler hazard). */
static int32_t _sb_flight(rio_t *io, int32_t executed, int32_t limit) {{
    int32_t n = 0, i;
    for (i = 0; i < io->in_n; i++) {{
        if (io->in_mat[i] < limit) continue;
        io->in_reg[n] = io->in_reg[i];
        io->in_mat[n] = io->in_mat[i] - executed;
        io->in_val[n] = io->in_val[i];
        n++;
    }}
    for (i = 0; i < io->n_spill; i++) {{
        if (n >= {IN_MAX}) return 1;
        io->in_reg[n] = io->spill_reg[i];
        io->in_mat[n] = io->spill_mat[i] - executed;
        io->in_val[n] = io->spill_val[i];
        n++;
    }}
    io->in_n = n;
    io->n_spill = 0;
    return 0;
}}

/* SyncDevice.tick — bit-identical port (IEEE doubles, truncation) */
static void _tick(rio_t *io) {{
    int64_t emit, step;
    if (!(io->sync_pending_main || io->sync_pending_corr)) {{
        io->sync_acc = 0.0;
        return;
    }}
    io->sync_acc += io->sync_rate;
    emit = (int64_t)io->sync_acc;
    if (emit <= 0) return;
    io->sync_acc -= (double)emit;
    while (emit > 0 && io->sync_pending_main > 0) {{
        step = emit < io->sync_pending_main ? emit : io->sync_pending_main;
        io->sync_pending_main -= step;
        io->sync_emulated += step;
        io->sync_cycles_generated += step;
        emit -= step;
    }}
    while (emit > 0 && io->sync_pending_corr > 0) {{
        step = emit < io->sync_pending_corr ? emit : io->sync_pending_corr;
        io->sync_pending_corr -= step;
        io->sync_emulated += step;
        io->sync_corr_cycles_generated += step;
        emit -= step;
    }}
}}

/* SyncDevice.tick_n — bit-identical port incl. the integer fast path */
static void _tick_n(rio_t *io, int64_t count) {{
    int64_t i, remaining, step;
    if (count <= 0) return;
    if (!(io->sync_pending_main || io->sync_pending_corr)) {{
        io->sync_acc = 0.0;
        return;
    }}
    if (io->sync_rate == (double)(int64_t)io->sync_rate
            && io->sync_acc == 0.0) {{
        remaining = (int64_t)io->sync_rate * count;
        if (io->sync_pending_main) {{
            step = (remaining < io->sync_pending_main
                    ? remaining : io->sync_pending_main);
            io->sync_pending_main -= step;
            io->sync_emulated += step;
            io->sync_cycles_generated += step;
            remaining -= step;
        }}
        if (remaining && io->sync_pending_corr) {{
            step = (remaining < io->sync_pending_corr
                    ? remaining : io->sync_pending_corr);
            io->sync_pending_corr -= step;
            io->sync_emulated += step;
            io->sync_corr_cycles_generated += step;
        }}
        return;
    }}
    for (i = 0; i < count; i++) _tick(io);
}}
"""


def _operand(opnd: tuple) -> str:
    kind = opnd[0]
    if kind == "reg":
        return f"regs[{opnd[1]}]"
    if kind == "var":
        return f"v{opnd[1]}"
    return f"(p{opnd[2]} ? v{opnd[1]} : regs[{opnd[3]}])"


def _addr(base: str, imm: int) -> str:
    """u32 effective address (wraps like the reference semantics)."""
    if imm:
        return f"(uint32_t)({base} + {u32(imm)}u)"
    return base


class UnsupportedRegion(Exception):
    """Raised internally when a region does not fit the native ABI."""

    def __init__(self, reason: str, pc0: int | None = None) -> None:
        super().__init__(reason)
        self.pc0 = pc0


class CEmitter:
    """Renders superblocks to C99; declines what the ABI cannot express."""

    name = "c"

    def symbol(self, ir: RegionIR) -> str:
        return f"sb{ir.pc0}"

    def emit(self, ir: RegionIR) -> tuple[str, str] | None:
        """Render *ir* as a single-member superblock;
        ``(c_source, symbol)`` or ``None`` to decline."""
        symbol = self.symbol(ir)
        try:
            source = self._render_superblock(
                symbol, (ir.pc0,), {ir.pc0: ir}, {ir.pc0: 0}, [])
        except UnsupportedRegion:
            return None
        return source, symbol

    def emit_module(self, irs, landing_sites=()) -> tuple[str, ModulePlan]:
        """One translation unit of superblocks covering *irs*.

        *landing_sites* is the program's indirect-branch landing set
        (``addr_to_packet`` values), used by trace formation to keep
        indirect chains inside one superblock.  Returns
        ``(c_source, plan)``; regions the ABI cannot express are
        simply absent from the plan (their superblock group re-forms
        without them).  The source is deterministic for a given IR
        set, which is what makes the on-disk shared-object cache
        content-addressable.
        """
        irs_by_pc = {ir.pc0: ir for ir in irs}
        while True:
            try:
                return self._emit_module_once(irs_by_pc, landing_sites)
            except UnsupportedRegion as exc:  # pragma: no cover - the
                # op set is closed today; this path guards future ops
                if exc.pc0 is None or exc.pc0 not in irs_by_pc:
                    raise
                del irs_by_pc[exc.pc0]

    def _emit_module_once(self, irs_by_pc: dict[int, RegionIR],
                          landing_sites) -> tuple[str, ModulePlan]:
        groups = form_traces(irs_by_pc, landing_sites)
        member_index: dict[int, int] = {}
        for members in groups:
            for pc0 in members:
                member_index[pc0] = len(member_index)
        sites: list[int] = []
        chunks = [_PRELUDE]
        superblocks = []
        for members in groups:
            symbol = f"sb{members[0]}"
            chunks.append(self._render_superblock(
                symbol, members, irs_by_pc, member_index, sites))
            superblocks.append(SuperblockPlan(symbol=symbol,
                                              members=members))
        plan = ModulePlan(tuple(superblocks), tuple(sites))
        return "\n".join(chunks), plan

    def _render_superblock(self, symbol: str, members, irs_by_pc,
                           member_index, sites: list) -> str:
        """One C function: labelled member blocks + dispatch switch.

        Entry loads ``io->sb_pc`` and the quantum budget, then jumps to
        the dispatch switch, which routes any member entry (initial or
        indirect) to its block unless its demotion bit is set.  Control
        that reaches ``Lexit`` leaves with ``KIND_CHAIN`` at ``spc``.
        """
        member_set = frozenset(members)
        lines = [
            f"int32_t {symbol}(uint32_t *regs, uint8_t *mem, "
            f"rio_t *io) {{",
            "    int32_t spc = io->sb_pc;",
            "    int64_t budget = io->budget;",
            "    io->pb = 0;",
            "    goto Ldispatch;",
        ]
        for pc0 in members:
            renderer = _CRenderer(irs_by_pc[pc0], member_set,
                                  member_index, sites)
            try:
                lines.append(renderer.render_block())
            except UnsupportedRegion as exc:
                raise UnsupportedRegion(str(exc), pc0) from None
        lines.append("Ldispatch:")
        lines.append("    switch (spc) {")
        for pc0 in members:
            lines.append(f"    case {pc0}: "
                         f"if (!io->sb_off[{member_index[pc0]}]) "
                         f"goto L{pc0}; break;")
        lines.append("    default: break;")
        lines.append("    }")
        lines.append("Lexit:")
        lines.append("    io->next_pc = spc;")
        lines.append(f"    io->kind = {KIND_CHAIN};")
        lines.append(f"    return {KIND_CHAIN};")
        lines.append("}")
        lines.append("")
        return "\n".join(lines)


class _CRenderer:
    """Walks one member region's IR, emitting its superblock block.

    *members* is the owning superblock's member set (chain edges into
    it render as internal ``goto``\\ s), *member_index* the module-wide
    member numbering (demotion-bitmap indices) and *sites* the
    module-wide block-site allocator (the renderer appends each block
    head's source address and indexes ``io->blk`` with its position).
    """

    def __init__(self, ir: RegionIR, members: frozenset = frozenset(),
                 member_index: dict | None = None,
                 sites: list | None = None) -> None:
        self.ir = ir
        self.members = members
        self.member_index = member_index if member_index is not None else {}
        self.sites = sites if sites is not None else []
        self.lines: list[str] = []
        self.indent = 1

    def add(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- declarations ----------------------------------------------------

    def _declarations(self) -> list[str]:
        vals: set[int] = set()
        preds: set[int] = set()
        store_offs: set[int] = set()
        has_indirect = False
        has_halt = False
        for p in self.ir.packets:
            for pred in p.preds:
                preds.add(pred.var)
            for value in p.values:
                vals.add(value.var)
            for check in p.store_checks:
                store_offs.add(check.m)
            for node in p.applies:
                if isinstance(node, IndirectBranch):
                    has_indirect = True
                elif isinstance(node, HaltOp):
                    has_halt = True
        out = ["int32_t ci = 0, cn = 0;"]
        if vals:
            decl = ", ".join(f"v{m} = 0u" for m in sorted(vals))
            out.append(f"uint32_t {decl};")
        if preds:
            decl = ", ".join(f"p{m} = 0" for m in sorted(preds))
            out.append(f"int32_t {decl};")
        if store_offs:
            decl = ", ".join(f"so{m} = 0" for m in sorted(store_offs))
            out.append(f"int64_t {decl};")
        if has_indirect:
            out.append("int32_t btarget = -1;")
        if has_halt:
            out.append("int32_t halted = 0;")
        out.append("(void)mem;")
        return out

    # -- epilogues -------------------------------------------------------

    def _accumulate(self, ep: Epilogue) -> None:
        """Fold one exiting region's epilogue into the resident state:
        counter totals, batched ticks, then the in-flight rebase
        (commit-window drop + spill fold) and the executed count."""
        if len(ep.spills) > SPILL_MAX:
            raise UnsupportedRegion(f"{len(ep.spills)} spills")
        add = self.add
        terms = []
        if ep.instr_static:
            terms.append(str(ep.instr_static))
        if ep.use_ci:
            terms.append("ci")
        if terms:
            add(f"io->instr_total += {' + '.join(terms)};")
        terms = []
        if ep.nop_static:
            terms.append(str(ep.nop_static))
        if ep.use_cn:
            terms.append("cn")
        if terms:
            add(f"io->nop_total += {' + '.join(terms)};")
        if ep.src_static:
            add(f"io->src_total += {ep.src_static};")
        if ep.ticks > 0:
            add(f"_tick_n(io, {ep.ticks});")
        add("io->n_spill = 0;")
        for spill in ep.spills:
            line = f"_spill(io, {spill.dst}, {spill.mature}, v{spill.var});"
            if spill.pred is not None:
                add(f"if (p{spill.pred}) {line}")
            else:
                add(line)
        # the commit sections ran for the first commits_ran packets
        # (a bail packet's too: it re-executes on the core); the entry
        # window bounds how deep commit sections scan the in-flight set
        limit = min(ep.commits_ran, self.ir.entry_window)
        add(f"if (_sb_flight(io, {ep.executed}, {limit})) "
            f"{{ io->kind = {KIND_INFLIGHT_OVF}; "
            f"return {KIND_INFLIGHT_OVF}; }}")
        add(f"io->executed_total += {ep.executed};")

    def _emit_epilogue(self, ep: Epilogue, kind: int,
                       next_pc_expr: str) -> None:
        """An external exit: accumulate, report, return to the wrapper.

        ``pb_mat`` is rebased to the exit's issue origin (the wrapper
        adds the whole call's executed total); ``sb_pc`` attributes the
        exit — in particular a bail — to this member region.
        """
        add = self.add
        self._accumulate(ep)
        add(f"io->next_pc = {next_pc_expr};")
        if ep.branch is not None:
            br = ep.branch
            target = str(br.target) if br.target is not None else "btarget"
            fire = (f"io->pb = 1; io->pb_mat = {br.effective - ep.executed}; "
                    f"io->pb_target = {target};")
            if br.pred is not None:
                add(f"if (p{br.pred}) {{ {fire} }}")
            else:
                add(fire)
        add(f"io->sb_pc = {self.ir.pc0};")
        add(f"io->kind = {kind}; return {kind};")

    def _emit_bail(self, ep: Epilogue) -> None:
        self._emit_epilogue(ep, KIND_BAIL, str(self.ir.pc0 + ep.executed))

    def _chain_exit(self, ep: Epilogue, target: int | None) -> None:
        """A chain edge: internal when the target is an enabled member
        and the quantum budget allows, external otherwise.

        The budget test ``executed_total + sync_stall >= budget``
        reproduces ``run_slice``'s post-region ``cycles >= until``
        check exactly (the wrapper computes ``budget`` as the limit
        minus the core's cycle count at entry), so lockstep quanta
        stop at the same region boundaries as per-region dispatch.
        """
        add = self.add
        if ep.branch is not None:  # pragma: no cover - lower builds
            # chain exits with a clean pipeline; render externally if
            # that ever changes
            self._emit_epilogue(
                ep, KIND_CHAIN,
                str(target) if target is not None else "btarget")
            return
        if target is not None and target not in self.members:
            self._emit_epilogue(ep, KIND_CHAIN, str(target))
            return
        self._accumulate(ep)
        add(f"io->sb_pc = {self.ir.pc0};")
        if target is None:
            add("spc = btarget;")
            add("if (io->executed_total + io->sync_stall >= budget) "
                "goto Lexit;")
            add("goto Ldispatch;")
        else:
            add(f"spc = {target};")
            add("if (io->executed_total + io->sync_stall >= budget) "
                "goto Lexit;")
            add(f"if (!io->sb_off[{self.member_index[target]}]) "
                f"goto L{target};")
            add("goto Lexit;")

    def _emit_error(self, kind: int, aux_expr: str) -> None:
        self.add(f"io->aux = (uint32_t)({aux_expr}); "
                 f"io->kind = {kind}; return {kind};")

    # -- main ------------------------------------------------------------

    def render_block(self) -> str:
        """This member as a labelled block of its superblock function.

        The label precedes the compound statement, so jumping to it
        (dispatch or an internal chain edge) runs the declarations'
        initializers — re-entry via a loop back edge starts from a
        clean slate of locals, exactly like a fresh call used to.
        """
        ir = self.ir
        for p in ir.packets:
            self._render_packet(p)
        self._render_end()
        body = self.lines
        decls = ["    " + line for line in self._declarations()]
        return "\n".join([f"L{ir.pc0}: {{"] + decls + body + ["}"])

    def _render_packet(self, p: PacketIR) -> None:
        ir = self.ir
        add = self.add
        add(f"/* packet {p.index} (+{p.offset}) */")

        # 1. writeback commits due at this packet's issue point
        if p.entry_commit:
            test = ("<= 0" if p.offset == 0 else f"== {p.offset}")
            add("for (int32_t _i = 0; _i < io->in_n; _i++)")
            add(f"    if (io->in_mat[_i] {test}) "
                f"regs[io->in_reg[_i]] = io->in_val[_i];")
        for commit in p.commits:
            line = f"regs[{commit.dst}] = v{commit.var};"
            if commit.pred is not None:
                add(f"if (p{commit.pred}) {line}")
            else:
                add(line)

        # 2a. bridge-window pre-check: bus-bridge traffic (and with it
        #     the multi-core shared segment, a bridge sub-window) needs
        #     Python peripherals, so the packet bails *before* any of
        #     its accesses execute — the generalized form of the Python
        #     emitter's shared-segment guard, using the same epilogue
        if p.device:
            if p.guard is None:  # pragma: no cover - device implies
                raise UnsupportedRegion("device packet without guard")
            if not p.guard.checks:
                # a store base depends on a same-packet result: the
                # address cannot be pre-checked, so the packet always
                # runs interpreted
                self._emit_bail(p.guard.bail)
                return  # rest of the packet (and region) is dead code
            conds = []
            for check in p.guard.checks:
                addr = _addr(_operand(check.base), check.imm)
                cond = (f"0 <= (int64_t)({addr}) - {ir.bridge_base} "
                        f"&& (int64_t)({addr}) - {ir.bridge_base} "
                        f"< {_BRIDGE_WINDOW}")
                if check.pred_reg is not None:
                    test = "!=" if check.pred_sense else "=="
                    cond = f"regs[{check.pred_reg}] {test} 0u && ({cond})"
                conds.append(f"({cond})")
            add(f"if ({' || '.join(conds)}) {{")
            self.indent += 1
            self._emit_bail(p.guard.bail)
            self.indent -= 1
            add("}")

        # 2. device packets are tick barriers: flush batched ticks, then
        #    replicate the interpreter's blocking-read stall loop
        if p.device:
            if p.tick_flush > 0:
                add(f"_tick_n(io, {p.tick_flush});")
            self._render_stall_loop(p)

        # 3. phase A1: predicates (pre-packet register state)
        for pred in p.preds:
            test = "!=" if pred.sense else "=="
            add(f"p{pred.var} = regs[{pred.reg}] {test} 0u;")

        # 4. phase A2: values (loads carry their memory dispatch)
        for value in p.values:
            guarded = value.pred is not None
            if guarded:
                add(f"if (p{value.pred}) {{")
                self.indent += 1
            if isinstance(value, PlainLoad):
                self._render_plain_load(value)
            elif isinstance(value, DeviceLoad):
                self._render_device_load(value)
            else:
                add(f"v{value.var} = {self._value_expr(value)};")
            if guarded:
                self.indent -= 1
                add("}")

        # 5. phase A3: plain-store range checks (apply-time bases)
        for check in p.store_checks:
            guarded = check.pred is not None
            if guarded:
                add(f"if (p{check.pred}) {{")
                self.indent += 1
            m = check.m
            addr = _addr(_operand(check.base), check.imm)
            add(f"so{m} = (int64_t)({addr}) - {ir.mem_base};")
            add(f"if (so{m} < 0 || so{m} > {ir.mem_len - check.size}) {{")
            self.indent += 1
            self._emit_bail(check.bail)
            self.indent -= 1
            add("}")
            if guarded:
                self.indent -= 1
                add("}")

        # 6. per-block statistics: the dict lives in Python, so each
        #    block-head site bumps its module-wide counter and, on the
        #    0 -> 1 transition, registers itself on the dirty list —
        #    the wrapper folds only touched sites (exact even on error
        #    paths, cheap even when a call runs one region)
        if p.block is not None:
            site = len(self.sites)
            self.sites.append(p.block[0])
            add(f"if (io->blk[{site}]++ == 0) "
                f"io->blk_dirty[io->blocks_done++] = {site};")

        # 7. phase A4: execution counters (after every possible bail)
        for var in p.ci_preds:
            add(f"if (p{var}) ci++;")
        if p.cn_preds:
            test = " || ".join(f"p{var}" for var in p.cn_preds)
            add(f"if (!({test})) cn++;")

        # 8. phase B: apply effects in packet order
        for node in p.applies:
            self._render_apply(node)

        # 9. a device packet ticks immediately (order vs. device writes
        #    matters).  The exit-device check of the Python emitter is
        #    statically dead here: bridge stores bailed at the
        #    pre-check, and only the bridge reaches the exit device.
        if p.device_tick:
            add("_tick(io);")

        # 10. conditional halt exit
        if p.halt_exit is not None:
            unpred, ep = p.halt_exit
            if unpred:
                self._emit_epilogue(ep, KIND_HALT, str(ir.pc0 + ep.executed))
            else:
                add("if (halted) {")
                self.indent += 1
                self._emit_epilogue(ep, KIND_HALT, str(ir.pc0 + ep.executed))
                self.indent -= 1
                add("}")

    def _render_apply(self, node) -> None:
        add = self.add
        if isinstance(node, HaltOp):
            if node.pred is not None:
                add(f"if (p{node.pred}) halted = 1;")
            else:
                add("halted = 1;")
            return
        if isinstance(node, IndirectBranch):
            m = node.m
            guarded = node.pred is not None
            if guarded:
                add(f"if (p{node.pred}) {{")
                self.indent += 1
            add(f"uint32_t bt{m} = {_operand(node.value)};")
            add(f"btarget = _a2p_find(io, bt{m});")
            add(f"if (btarget < 0) {{ io->aux = bt{m}; "
                f"io->kind = {KIND_BADBRANCH}; return {KIND_BADBRANCH}; }}")
            if guarded:
                self.indent -= 1
                add("}")
            return
        if isinstance(node, PlainStore):
            guarded = node.pred is not None
            if guarded:
                add(f"if (p{node.pred}) {{")
                self.indent += 1
            m = node.m
            val = _operand(node.val)
            add(f"mem[so{m}] = (uint8_t)({val});")
            for byte in range(1, node.size):
                add(f"mem[so{m} + {byte}] = "
                    f"(uint8_t)(({val}) >> {8 * byte});")
            if guarded:
                self.indent -= 1
                add("}")
            return
        if isinstance(node, DeviceStore):
            guarded = node.pred is not None
            if guarded:
                add(f"if (p{node.pred}) {{")
                self.indent += 1
            self._render_device_store(node)
            if guarded:
                self.indent -= 1
                add("}")
            return
        assert isinstance(node, RegWrite), node
        line = f"regs[{node.dst}] = v{node.var};"
        if node.pred is not None:
            add(f"if (p{node.pred}) {line}")
        else:
            add(line)

    # -- device dispatch (sync window or plain memory; the bridge
    #    window bailed at the packet pre-check) ---------------------------

    def _render_stall_loop(self, p: PacketIR) -> None:
        """``C6xCore._packet_blocks``: stall while a sync-status read
        in this packet would block — preserving Python's short-circuit
        evaluation order, including the invalid-offset error."""
        if not p.stall_checks:
            return
        ir = self.ir
        add = self.add
        add("for (;;) {")
        self.indent += 1
        add("int32_t _blocked = 0;")
        for sc in p.stall_checks:
            addr = _addr(f"regs[{sc.src1}]", sc.imm)
            add("if (!_blocked) {")
            self.indent += 1
            inner = 0
            if sc.pred_reg is not None:
                test = "!=" if sc.pred_sense else "=="
                add(f"if (regs[{sc.pred_reg}] {test} 0u) {{")
                self.indent += 1
                inner = 1
            add(f"int64_t w{sc.m} = (int64_t)({addr}) - {ir.sync_base};")
            add(f"if (0 <= w{sc.m} && w{sc.m} < {SYNC_WINDOW}) {{")
            self.indent += 1
            add(f"if (w{sc.m} == {REG_STATUS}) "
                f"_blocked = io->sync_pending_main > 0;")
            add(f"else if (w{sc.m} == {REG_CORR_STATUS}) "
                f"_blocked = io->sync_pending_corr > 0;")
            add("else {")
            self.indent += 1
            self._emit_error(KIND_SYNC_BADREAD, f"w{sc.m}")
            self.indent -= 1
            add("}")
            self.indent -= 1
            add("}")
            for _ in range(inner):
                self.indent -= 1
                add("}")
            self.indent -= 1
            add("}")
        add("if (!_blocked) break;")
        add("io->sync_stall += 1;")
        add("_tick(io);")
        self.indent -= 1
        add("}")

    def _render_device_load(self, node: DeviceLoad) -> None:
        """Two-way dispatch: sync window or plain target memory."""
        add = self.add
        ir = self.ir
        m = node.var
        size = _LOAD_SIZE[node.op]
        addr = _addr(f"regs[{node.src1}]", node.imm)
        add("{")
        self.indent += 1
        add(f"uint32_t a{m} = {addr};")
        add(f"int64_t o{m} = (int64_t)a{m} - {ir.sync_base};")
        add(f"if (0 <= o{m} && o{m} < {SYNC_WINDOW}) {{")
        self.indent += 1
        add(f"if (o{m} != {REG_STATUS} && o{m} != {REG_CORR_STATUS}) {{")
        self.indent += 1
        self._emit_error(KIND_SYNC_BADREAD, f"o{m}")
        self.indent -= 1
        add("}")
        add(f"v{m} = 0u;")
        add(f"io->sync_stall += {ir.sync_stall};")
        self.indent -= 1
        add("} else {")
        self.indent += 1
        add(f"int64_t mo{m} = (int64_t)a{m} - {ir.mem_base};")
        add(f"if (mo{m} < 0 || mo{m} > {ir.mem_len - size}) {{")
        self.indent += 1
        self._emit_error(KIND_BUSERR_LOAD, f"a{m}")
        self.indent -= 1
        add("}")
        parts = [f"(uint32_t)mem[mo{m}]"]
        for byte in range(1, size):
            parts.append(f"((uint32_t)mem[mo{m} + {byte}] << {8 * byte})")
        add(f"v{m} = {' | '.join(parts)};")
        self.indent -= 1
        add("}")
        self._render_sign_fix(node.op, m)
        self.indent -= 1
        add("}")

    def _render_device_store(self, node: DeviceStore) -> None:
        add = self.add
        ir = self.ir
        m = node.m
        size = node.size
        addr = _addr(_operand(node.base), node.imm)
        add("{")
        self.indent += 1
        add(f"uint32_t sa{m} = {addr};")
        add(f"uint32_t sv{m} = {_operand(node.val)};")
        add(f"int64_t o{m} = (int64_t)sa{m} - {ir.sync_base};")
        add(f"if (0 <= o{m} && o{m} < {SYNC_WINDOW}) {{")
        self.indent += 1
        add(f"if (o{m} == {REG_CMD}) {{")
        self.indent += 1
        add("if (io->sync_pending_main) {")
        self.indent += 1
        self._emit_error(KIND_SYNC_PROTO_MAIN, f"o{m}")
        self.indent -= 1
        add("}")
        add(f"io->sync_pending_main = (int64_t)sv{m};")
        add("io->sync_blocks_started++;")
        self.indent -= 1
        add(f"}} else if (o{m} == {REG_CORR_CMD}) {{")
        self.indent += 1
        add("if (io->sync_pending_corr) {")
        self.indent += 1
        self._emit_error(KIND_SYNC_PROTO_CORR, f"o{m}")
        self.indent -= 1
        add("}")
        add(f"io->sync_pending_corr = (int64_t)sv{m};")
        add(f"if (sv{m}) io->sync_corrections_started++;")
        self.indent -= 1
        add("} else {")
        self.indent += 1
        self._emit_error(KIND_SYNC_BADWRITE, f"o{m}")
        self.indent -= 1
        add("}")
        add(f"io->sync_stall += {ir.sync_stall};")
        self.indent -= 1
        add("} else {")
        self.indent += 1
        add(f"int64_t mo{m} = (int64_t)sa{m} - {ir.mem_base};")
        add(f"if (mo{m} < 0 || mo{m} > {ir.mem_len - size}) {{")
        self.indent += 1
        self._emit_error(KIND_BUSERR_STORE, f"sa{m}")
        self.indent -= 1
        add("}")
        add(f"mem[mo{m}] = (uint8_t)(sv{m});")
        for byte in range(1, size):
            add(f"mem[mo{m} + {byte}] = (uint8_t)(sv{m} >> {8 * byte});")
        self.indent -= 1
        add("}")
        self.indent -= 1
        add("}")

    def _render_plain_load(self, node: PlainLoad) -> None:
        add = self.add
        ir = self.ir
        m = node.var
        size = _LOAD_SIZE[node.op]
        addr = _addr(f"regs[{node.src1}]", node.imm)
        add("{")
        self.indent += 1
        add(f"int64_t o{m} = (int64_t)({addr}) - {ir.mem_base};")
        add(f"if (o{m} < 0 || o{m} > {ir.mem_len - size}) {{")
        self.indent += 1
        self._emit_bail(node.bail)
        self.indent -= 1
        add("}")
        parts = [f"(uint32_t)mem[o{m}]"]
        for byte in range(1, size):
            parts.append(f"((uint32_t)mem[o{m} + {byte}] << {8 * byte})")
        add(f"v{m} = {' | '.join(parts)};")
        self._render_sign_fix(node.op, m)
        self.indent -= 1
        add("}")

    def _render_sign_fix(self, op: TOp, m: int) -> None:
        if op is TOp.LDH:
            self.add(f"if (v{m} & 0x8000u) v{m} |= 0xFFFF0000u;")
        elif op is TOp.LDB:
            self.add(f"if (v{m} & 0x80u) v{m} |= 0xFFFFFF00u;")

    # -- value expressions -----------------------------------------------

    def _value_expr(self, node: AluOp) -> str:
        """C expression for the phase-1 result of *node*.

        Semantics mirror :meth:`PythonEmitter._value_expr` op for op;
        ``uint32_t`` arithmetic supplies the ``& 0xFFFFFFFF`` masks.
        """
        op = node.op
        if op in (TOp.MVK, TOp.MVKL):
            return f"{u32(node.imm if node.imm is not None else 0)}u"
        if op is TOp.MVKH:
            high = u32((node.imm or 0) << 16) & 0xFFFF0000
            return f"{high}u | (regs[{node.dst}] & 0xFFFFu)"
        a = f"regs[{node.src1}]" if node.src1 is not None else "0u"
        if op is TOp.MV:
            return a
        if op is TOp.ABS:
            return f"(({a} & 0x80000000u) ? (0u - {a}) : {a})"
        if node.src2 is not None:
            b_u = f"regs[{node.src2}]"
            b_s = f"(int32_t)regs[{node.src2}]"
            b_sh = f"(regs[{node.src2}] & 31u)"
        else:
            imm = node.imm or 0
            b_u = f"{u32(imm)}u"
            b_s = str(s32(u32(imm)))
            b_sh = str(imm & 31)
        a_s = f"(int32_t){a}"
        if op is TOp.ADD:
            return f"{a} + {b_u}"
        if op is TOp.SUB:
            return f"{a} - {b_u}"
        if op is TOp.MPY:
            return f"(uint32_t)((int64_t)({a_s}) * (int64_t)({b_s}))"
        if op is TOp.AND:
            return f"{a} & {b_u}"
        if op is TOp.OR:
            return f"{a} | {b_u}"
        if op is TOp.XOR:
            return f"{a} ^ {b_u}"
        if op is TOp.ANDN:
            return f"{a} & ~{b_u}"
        if op is TOp.SHL:
            return f"{a} << {b_sh}"
        if op is TOp.SHRU:
            return f"{a} >> {b_sh}"
        if op is TOp.SHRA:
            return f"(uint32_t)(({a_s}) >> {b_sh})"
        if op is TOp.MIN:
            return (f"(uint32_t)((({a_s}) < ({b_s})) "
                    f"? ({a_s}) : ({b_s}))")
        if op is TOp.MAX:
            return (f"(uint32_t)((({a_s}) > ({b_s})) "
                    f"? ({a_s}) : ({b_s}))")
        if op is TOp.CMPEQ:
            return f"({a} == {b_u}) ? 1u : 0u"
        if op is TOp.CMPNE:
            return f"({a} != {b_u}) ? 1u : 0u"
        if op is TOp.CMPLT:
            return f"(({a_s}) < ({b_s})) ? 1u : 0u"
        if op is TOp.CMPLTU:
            return f"({a} < {b_u}) ? 1u : 0u"
        if op is TOp.CMPGE:
            return f"(({a_s}) >= ({b_s})) ? 1u : 0u"
        if op is TOp.CMPGEU:
            return f"({a} >= {b_u}) ? 1u : 0u"
        raise UnsupportedRegion(f"op {op}")

    # -- region end ------------------------------------------------------

    def _render_end(self) -> None:
        ir = self.ir
        end = ir.end
        add = self.add
        if end is None:  # 'halt': the exit inside the packet returned
            return
        if isinstance(end, BranchEnd):
            if end.pred is not None:
                add(f"if (p{end.pred}) {{")
                self.indent += 1
                self._chain_exit(end.taken, end.target)
                self.indent -= 1
                add("}")
                self._chain_exit(end.fallthrough, end.fall_pc)
            else:
                self._chain_exit(end.taken, end.target)
            return
        if isinstance(end, CutEnd):
            self._chain_exit(end.epilogue, end.chain_pc)
            return
        assert isinstance(end, InterpEnd)
        self._emit_epilogue(end.epilogue, KIND_INTERP,
                            str(ir.pc0 + end.epilogue.executed))
