"""Python emitter: renders Region IR to specialized host-Python source.

This is the reference :class:`~repro.vliw.codegen.RegionEmitter`: it
renders *every* IR node (device dispatch, shared-window guards, stall
loops included) and its output is locked bit-identical to the
interpretive core by the differential and fuzz suites.  Other emitters
(the native C backend) may refuse a region; this one never does.

The emitted function closes over one core's mutable state through the
names :meth:`PacketCompiler._namespace` provides (``_regs``, ``_mem``,
``sync``, ``stats``, …) and follows the dispatch contract of
:mod:`repro.vliw.compiled`: it returns the next region's callable, the
``INTERP`` sentinel, or ``None`` on halt/exit.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.c6x.instructions import TOp
from repro.utils.bits import s32, u32
from repro.vliw.codegen.ir import (
    AluOp,
    BranchEnd,
    CutEnd,
    DeviceLoad,
    DeviceStore,
    Epilogue,
    HaltOp,
    IndirectBranch,
    InterpEnd,
    PacketIR,
    PlainLoad,
    PlainStore,
    RegionIR,
    RegWrite,
)
from repro.vliw.codegen.lower import _SHARED_HI, _SHARED_LO
from repro.vliw.core import _LOAD_SIZE, BRIDGE_WINDOW as _BRIDGE_WINDOW
from repro.vliw.syncdev import SYNC_WINDOW


class _Emit:
    """Tiny indented-source accumulator."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def add(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _operand(opnd: tuple) -> str:
    """Render a value operand (see :mod:`repro.vliw.codegen.ir`)."""
    kind = opnd[0]
    if kind == "reg":
        return f"regs[{opnd[1]}]"
    if kind == "var":
        return f"v{opnd[1]}"
    return f"(v{opnd[1]} if p{opnd[2]} else regs[{opnd[3]}])"


def _addr(base: str, imm: int) -> str:
    return f"({base} + {imm}) & 0xFFFFFFFF" if imm else base


class PythonEmitter:
    """Renders one :class:`RegionIR` to host-Python source.

    *inline_shared* selects how guarded shared-segment accesses render
    (multi-core SoCs only — single-core regions carry no guards and are
    unaffected): ``True`` (the default) emits the access **inline** at
    region entry — the device dispatch below already routes shared
    addresses through the core's arbitrated bridge port, so arbitration
    and stall semantics are the interpreter's, but the region resumes
    in place instead of bouncing every access to the interpreter.
    Inline entries still bail while the run-ahead flag ``_ra`` is up
    (no shared access may execute inside an adaptive window), and
    accesses past the entry packet keep the address-guard bail.
    ``False`` reproduces the historical bail-everything source byte for
    byte — the reference baseline of the lockstep differential
    contract.
    """

    name = "python"

    def __init__(self, inline_shared: bool = True) -> None:
        self.inline_shared = inline_shared

    def emit(self, ir: RegionIR) -> tuple[str, str]:
        """Produce ``(source, function_name)`` for *ir*."""
        return _RegionRenderer(ir, self.inline_shared).render()


class _RegionRenderer:
    """Stateless walk of one region's IR, emitting Python lines."""

    def __init__(self, ir: RegionIR, inline_shared: bool = True) -> None:
        self.ir = ir
        self.inline_shared = inline_shared
        #: True while rendering a packet whose shared accesses execute
        #: inline (device dispatch then counts them through ``_ilc``)
        self._inline_packet = False
        self.out = _Emit()

    def render(self) -> tuple[str, str]:
        ir = self.ir
        name = f"_region_{ir.pc0}"
        add = self.out.add
        add(0, f"def {name}():")
        add(1, "regs = _regs; mem = _mem")
        add(1, "ii0 = core._issue_index")
        add(1, "inflight = core._inflight")
        if ir.use_ci:
            add(1, "_ci = 0")
        if ir.use_cn:
            add(1, "_cn = 0")
        for packet in ir.packets:
            self._render_packet(packet)
        self._render_end()
        return self.out.source(), name

    # -- epilogues -------------------------------------------------------

    def _emit_epilogue(self, indent: int, ep: Epilogue) -> None:
        """Counter flush + state spill shared by every region exit."""
        add = self.out.add
        add(indent, f"core._issue_index = ii0 + {ep.executed}")
        pc_expr = str(ep.pc) if ep.pc is not None else f"bi{ep.pc_var}"
        add(indent, f"core.pc = {pc_expr}")
        add(indent, f"stats.packets_issued += {ep.executed}")
        instr_expr = str(ep.instr_static)
        if ep.use_ci:
            instr_expr += " + _ci"
        add(indent, f"stats.instructions_executed += {instr_expr}")
        if ep.nop_static or ep.use_cn:
            nop_expr = str(ep.nop_static)
            if ep.use_cn:
                nop_expr += " + _cn"
            add(indent, f"stats.nop_packets += {nop_expr}")
        if ep.src_static:
            add(indent, f"stats.source_instructions += {ep.src_static}")
        if ep.ticks > 0:
            add(indent, f"sync.tick_n({ep.ticks})")
        for spill in ep.spills:
            line = (f"inflight[{spill.dst}] = "
                    f"(ii0 + {spill.mature}, v{spill.var})")
            if spill.pred is not None:
                add(indent, f"if p{spill.pred}:")
                add(indent + 1, line)
            else:
                add(indent, line)
        if ep.branch is not None:
            br = ep.branch
            target = (str(br.target) if br.target is not None
                      else f"bi{br.target_var}")
            line = f"core._pending_branch = (ii0 + {br.effective}, {target})"
            if br.pred is not None:
                add(indent, f"if p{br.pred}:")
                add(indent + 1, line)
            else:
                add(indent, line)

    def _emit_chain_return(self, indent: int, cell: str, pc: int) -> None:
        """Direct chaining: return the successor's cached callable."""
        add = self.out.add
        add(indent, f"_n = {cell}[0]")
        add(indent, "if _n is None:")
        add(indent + 1, f"_n = _link({cell}, {pc})")
        add(indent, "return _n")

    def _emit_bail(self, indent: int, ep: Epilogue) -> None:
        """Hand the current packet to the interpretive core untouched."""
        self._emit_epilogue(indent, ep)
        self.out.add(indent, "return _INTERP")

    # -- per-packet rendering --------------------------------------------

    def _render_packet(self, p: PacketIR) -> None:
        ir = self.ir
        add = self.out.add
        add(1, f"# packet {p.index} (+{p.offset})")

        # 1. writeback commits due at this packet's issue point
        if p.entry_commit:
            add(1, "if inflight:")
            add(2, f"for _r in [_x for _x in inflight "
                   f"if inflight[_x][0] <= ii0 + {p.offset}]:")
            add(3, "regs[_r] = inflight.pop(_r)[1]")
        for commit in p.commits:
            line = f"regs[{commit.dst}] = v{commit.var}"
            if commit.pred is not None:
                add(1, f"if p{commit.pred}: {line}")
            else:
                add(1, line)

        # 2a. shared-segment guard (device packets on a shared SoC)
        self._inline_packet = False
        if p.guard is not None:
            if not p.guard.checks:
                self._emit_bail(1, p.guard.bail)
                return  # the packet unconditionally bails; rest is dead
            if self.inline_shared and p.offset == 0:
                # entry packet, inline mode: perform the shared access
                # inline through the arbitrated device dispatch below;
                # bail only while a run-ahead window is active (no
                # shared access may execute inside a window)
                self._inline_packet = True
                add(1, "if _ra[0]:")
                self._emit_bail(2, p.guard.bail)
            else:
                conds = []
                for check in p.guard.checks:
                    addr = _addr(_operand(check.base), check.imm)
                    cond = (f"{_SHARED_LO} <= ({addr}) - {ir.bridge_base} "
                            f"< {_SHARED_HI}")
                    if check.pred_reg is not None:
                        test = "!=" if check.pred_sense else "=="
                        cond = f"regs[{check.pred_reg}] {test} 0 and ({cond})"
                    conds.append(f"({cond})")
                add(1, f"if {' or '.join(conds)}:")
                self._emit_bail(2, p.guard.bail)

        # 2. device packets are tick barriers: flush batched ticks, then
        #    replicate the interpreter's blocking-read stall loop
        if p.device:
            if p.tick_flush > 0:
                add(1, f"sync.tick_n({p.tick_flush})")
            self._render_stall_loop(p)

        # 3. phase A1: predicates (pre-packet register state)
        for pred in p.preds:
            test = "!=" if pred.sense else "=="
            add(1, f"p{pred.var} = regs[{pred.reg}] {test} 0")

        # 4. phase A2: values (loads carry their memory dispatch)
        for value in p.values:
            indent = 1
            if value.pred is not None:
                add(1, f"if p{value.pred}:")
                indent = 2
            if isinstance(value, PlainLoad):
                self._render_plain_load(indent, value)
            elif isinstance(value, DeviceLoad):
                self._render_device_load(indent, value)
            else:
                add(indent, f"v{value.var} = {self._value_expr(value)}")

        # 5. phase A3: plain-store range checks (apply-time bases)
        for check in p.store_checks:
            indent = 1
            if check.pred is not None:
                add(1, f"if p{check.pred}:")
                indent = 2
            m = check.m
            addr = _addr(_operand(check.base), check.imm)
            add(indent, f"so{m} = ({addr}) - {ir.mem_base}")
            add(indent,
                f"if so{m} < 0 or so{m} > {ir.mem_len - check.size}:")
            self._emit_bail(indent + 1, check.bail)

        # 6. per-block stats at translated block heads
        if p.block is not None:
            addr = p.block[0]
            add(1, f"_bex[{addr}] = _bex.get({addr}, 0) + 1")

        # 7. phase A4: execution counters (after every possible bail)
        for var in p.ci_preds:
            add(1, f"if p{var}: _ci += 1")
        if p.cn_preds:
            test = " or ".join(f"p{var}" for var in p.cn_preds)
            add(1, f"if not ({test}): _cn += 1")

        # 8. phase B: apply effects in packet order
        for apply_op in p.applies:
            self._render_apply(apply_op)

        # 9. a device packet ticks immediately (order vs. device writes
        #    matters); pure packets batch their tick into the epilogue
        if p.device_tick:
            add(1, "sync.tick()")
            if p.exit_check is not None:
                add(1, "if _exitdev.exited:")
                self._emit_epilogue(2, p.exit_check)
                add(2, "return None")

        # 10. conditional halt exit
        if p.halt_exit is not None:
            unpred, ep = p.halt_exit
            if unpred:
                self._emit_epilogue(1, ep)
                add(1, "return None")
            else:
                add(1, "if core.halted:")
                self._emit_epilogue(2, ep)
                add(2, "return None")

    def _render_apply(self, node) -> None:
        add = self.out.add
        if isinstance(node, HaltOp):
            if node.pred is not None:
                add(1, f"if p{node.pred}: core.halted = True")
            else:
                add(1, "core.halted = True")
            return
        if isinstance(node, IndirectBranch):
            m = node.m
            indent = 1
            if node.pred is not None:
                add(1, f"if p{node.pred}:")
                indent = 2
            add(indent, f"bt{m} = {_operand(node.value)}")
            add(indent, f"bi{m} = _a2p.get(bt{m})")
            add(indent, f"if bi{m} is None:")
            add(indent + 1, f"raise _SimulationError("
                            f"f\"indirect branch to untranslated source "
                            f"address {{bt{m}:#010x}}\")")
            return
        if isinstance(node, PlainStore):
            indent = 1
            if node.pred is not None:
                add(1, f"if p{node.pred}:")
                indent = 2
            m = node.m
            val = _operand(node.val)
            if node.size == 1:
                add(indent, f"mem[so{m}] = {val} & 0xFF")
            elif node.size == 2:
                add(indent, f"mem[so{m}:so{m} + 2] = "
                            f"({val} & 0xFFFF).to_bytes(2, 'little')")
            else:
                add(indent, f"mem[so{m}:so{m} + 4] = "
                            f"({val}).to_bytes(4, 'little')")
            return
        if isinstance(node, DeviceStore):
            indent = 1
            if node.pred is not None:
                add(1, f"if p{node.pred}:")
                indent = 2
            self._render_device_store(indent, node)
            return
        assert isinstance(node, RegWrite)
        line = f"regs[{node.dst}] = v{node.var}"
        if node.pred is not None:
            add(1, f"if p{node.pred}: {line}")
        else:
            add(1, line)

    # -- memory operations -----------------------------------------------

    def _render_stall_loop(self, p: PacketIR) -> None:
        """Replicate ``C6xCore._packet_blocks``: stall while a
        sync-status read in this packet would block."""
        checks = []
        for sc in p.stall_checks:
            addr = _addr(f"regs[{sc.src1}]", sc.imm)
            cond = (f"0 <= (w{sc.m} := ({addr}) - {self.ir.sync_base}) "
                    f"< {SYNC_WINDOW} and sync.read_blocks(w{sc.m})")
            if sc.pred_reg is not None:
                test = "!=" if sc.pred_sense else "=="
                cond = f"regs[{sc.pred_reg}] {test} 0 and {cond}"
            checks.append(f"({cond})")
        if not checks:
            return
        add = self.out.add
        add(1, f"while {' or '.join(checks)}:")
        add(2, "core._stall_cycles += 1")
        add(2, "stats.sync_stall_cycles += 1")
        add(2, "sync.tick()")

    def _render_plain_load(self, indent: int, node: PlainLoad) -> None:
        """Direct bytearray load with a plain-memory range guard."""
        add = self.out.add
        ir = self.ir
        m = node.var
        size = _LOAD_SIZE[node.op]
        addr = _addr(f"regs[{node.src1}]", node.imm)
        add(indent, f"o{m} = ({addr}) - {ir.mem_base}")
        add(indent, f"if o{m} < 0 or o{m} > {ir.mem_len - size}:")
        self._emit_bail(indent + 1, node.bail)
        var = f"v{m}"
        if size == 1:
            add(indent, f"{var} = mem[o{m}]")
        elif size == 2:
            add(indent, f"{var} = fb(mem[o{m}:o{m} + 2], 'little')")
        else:
            add(indent, f"{var} = fb(mem[o{m}:o{m} + 4], 'little')")
        self._render_sign_fix(indent, node.op, var)

    def _render_device_load(self, indent: int, node: DeviceLoad) -> None:
        """The interpreter's three-way load dispatch, inline."""
        add = self.out.add
        ir = self.ir
        m = node.var
        size = _LOAD_SIZE[node.op]
        addr = _addr(f"regs[{node.src1}]", node.imm)
        var = f"v{m}"
        add(indent, f"a{m} = {addr}")
        add(indent, f"o{m} = a{m} - {ir.sync_base}")
        add(indent, f"if 0 <= o{m} < {SYNC_WINDOW}:")
        add(indent + 1, f"{var} = sync.read_value(o{m})")
        add(indent + 1, f"core._stall_cycles += {ir.sync_stall}")
        add(indent + 1, f"stats.sync_stall_cycles += {ir.sync_stall}")
        add(indent, "else:")
        add(indent + 1, f"b{m} = a{m} - {ir.bridge_base}")
        add(indent + 1, f"if 0 <= b{m} < {_BRIDGE_WINDOW}:")
        if self._inline_packet:
            add(indent + 2,
                f"if {_SHARED_LO} <= b{m} < {_SHARED_HI}: _ilc[0] += 1")
        add(indent + 2, f"{var} = bridge.read(b{m}, {size})")
        add(indent + 2, f"core._stall_cycles += {ir.bridge_stall}")
        add(indent + 2, f"stats.bridge_stall_cycles += {ir.bridge_stall}")
        add(indent + 1, "else:")
        add(indent + 2, f"mo{m} = a{m} - {ir.mem_base}")
        add(indent + 2, f"if mo{m} < 0 or mo{m} > {ir.mem_len - size}:")
        add(indent + 3,
            f"raise _BusError('target load outside memory', a{m})")
        if size == 1:
            add(indent + 2, f"{var} = mem[mo{m}]")
        else:
            add(indent + 2,
                f"{var} = fb(mem[mo{m}:mo{m} + {size}], 'little')")
        self._render_sign_fix(indent, node.op, var)

    def _render_sign_fix(self, indent: int, op: TOp, var: str) -> None:
        if op is TOp.LDH:
            self.out.add(indent, f"if {var} & 0x8000: {var} |= 0xFFFF0000")
        elif op is TOp.LDB:
            self.out.add(indent, f"if {var} & 0x80: {var} |= 0xFFFFFF00")

    def _render_device_store(self, indent: int, node: DeviceStore) -> None:
        """The interpreter's three-way store dispatch, inline."""
        add = self.out.add
        ir = self.ir
        m = node.m
        size = node.size
        addr = _addr(_operand(node.base), node.imm)
        add(indent, f"sa{m} = {addr}")
        add(indent, f"sv{m} = {_operand(node.val)}")
        add(indent, f"o{m} = sa{m} - {ir.sync_base}")
        add(indent, f"if 0 <= o{m} < {SYNC_WINDOW}:")
        add(indent + 1, f"sync.write(o{m}, sv{m})")
        add(indent + 1, f"core._stall_cycles += {ir.sync_stall}")
        add(indent + 1, f"stats.sync_stall_cycles += {ir.sync_stall}")
        add(indent, "else:")
        add(indent + 1, f"b{m} = sa{m} - {ir.bridge_base}")
        add(indent + 1, f"if 0 <= b{m} < {_BRIDGE_WINDOW}:")
        if self._inline_packet:
            add(indent + 2,
                f"if {_SHARED_LO} <= b{m} < {_SHARED_HI}: _ilc[0] += 1")
        add(indent + 2, f"bridge.write(b{m}, sv{m}, {size})")
        add(indent + 2, f"core._stall_cycles += {ir.bridge_stall}")
        add(indent + 2, f"stats.bridge_stall_cycles += {ir.bridge_stall}")
        add(indent + 1, "else:")
        add(indent + 2, f"mo{m} = sa{m} - {ir.mem_base}")
        add(indent + 2, f"if mo{m} < 0 or mo{m} > {ir.mem_len - size}:")
        add(indent + 3,
            f"raise _BusError('target store outside memory', sa{m})")
        if size == 1:
            add(indent + 2, f"mem[mo{m}] = sv{m} & 0xFF")
        elif size == 2:
            add(indent + 2, f"mem[mo{m}:mo{m} + 2] = "
                            f"(sv{m} & 0xFFFF).to_bytes(2, 'little')")
        else:
            add(indent + 2, f"mem[mo{m}:mo{m} + 4] = "
                            f"(sv{m}).to_bytes(4, 'little')")

    # -- value expressions -----------------------------------------------

    def _value_expr(self, node: AluOp) -> str:
        """Python expression for the phase-1 result of *node*."""
        op = node.op
        M = "0xFFFFFFFF"
        if op in (TOp.MVK, TOp.MVKL):
            return str(u32(node.imm if node.imm is not None else 0))
        if op is TOp.MVKH:
            high = u32((node.imm or 0) << 16) & 0xFFFF0000
            return f"{high} | (regs[{node.dst}] & 0xFFFF)"
        a = f"regs[{node.src1}]" if node.src1 is not None else "0"
        if op is TOp.MV:
            return a
        if op is TOp.ABS:
            return (f"((0x100000000 - {a}) & {M}) "
                    f"if {a} & 0x80000000 else {a}")
        if node.src2 is not None:
            b = f"regs[{node.src2}]"
            b_u = b
            b_s = f"s32({b})"
            b_sh = f"({b} & 31)"
        else:
            imm = node.imm or 0
            b = str(imm)
            b_u = str(u32(imm))
            b_s = str(s32(u32(imm)))
            b_sh = str(imm & 31)
        if op is TOp.ADD:
            return f"({a} + {b}) & {M}"
        if op is TOp.SUB:
            return f"({a} - {b}) & {M}"
        if op is TOp.MPY:
            return f"(s32({a}) * {b_s}) & {M}"
        if op is TOp.AND:
            return f"{a} & {b_u}"
        if op is TOp.OR:
            return f"{a} | {b_u}"
        if op is TOp.XOR:
            return f"{a} ^ {b_u}"
        if op is TOp.ANDN:
            return f"({a} & ~{b_u}) & {M}"
        if op is TOp.SHL:
            return f"({a} << {b_sh}) & {M}"
        if op is TOp.SHRU:
            return f"{a} >> {b_sh}"
        if op is TOp.SHRA:
            return f"(s32({a}) >> {b_sh}) & {M}"
        if op is TOp.MIN:
            return f"min(s32({a}), {b_s}) & {M}"
        if op is TOp.MAX:
            return f"max(s32({a}), {b_s}) & {M}"
        if op is TOp.CMPEQ:
            return f"1 if {a} == {b_u} else 0"
        if op is TOp.CMPNE:
            return f"1 if {a} != {b_u} else 0"
        if op is TOp.CMPLT:
            return f"1 if s32({a}) < {b_s} else 0"
        if op is TOp.CMPLTU:
            return f"1 if {a} < {b_u} else 0"
        if op is TOp.CMPGE:
            return f"1 if s32({a}) >= {b_s} else 0"
        if op is TOp.CMPGEU:
            return f"1 if {a} >= {b_u} else 0"
        raise SimulationError(f"unhandled target op {op}")  # pragma: no cover

    # -- region end ------------------------------------------------------

    def _render_end(self) -> None:
        ir = self.ir
        end = ir.end
        add = self.out.add
        if end is None:  # 'halt': the exit inside the packet returned
            return
        if isinstance(end, BranchEnd):
            if end.pred is not None:
                add(1, f"if p{end.pred}:")
                if end.target is not None:
                    self._emit_epilogue(2, end.taken)
                    self._emit_chain_return(2, "_ct", end.target)
                else:
                    self._emit_epilogue(2, end.taken)
                    add(2, f"return _goto(bi{end.target_var})")
                self._emit_epilogue(1, end.fallthrough)
                self._emit_chain_return(1, "_cf", end.fall_pc)
            else:
                if end.target is not None:
                    self._emit_epilogue(1, end.taken)
                    self._emit_chain_return(1, "_ct", end.target)
                else:
                    self._emit_epilogue(1, end.taken)
                    add(1, f"return _goto(bi{end.target_var})")
            return
        if isinstance(end, CutEnd):
            self._emit_epilogue(1, end.epilogue)
            self._emit_chain_return(1, "_cf", end.chain_pc)
            return
        assert isinstance(end, InterpEnd)
        self._emit_epilogue(1, end.epilogue)
        add(1, "return _INTERP")
