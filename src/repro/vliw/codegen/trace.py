"""Trace formation: group chained regions into native superblocks.

The native module used to hold one C function per region, so every
region exit — even a static chain edge to another native region —
crossed the FFI boundary, re-marshalled the sync-device mirror and
re-dispatched through the Python block-function cache.  Trace formation
groups regions connected by chain edges (``RegionIR.chain_targets``,
plus indirect-branch landing sites, which are the *potential* chain
edges of register-indirect regions) into **superblocks**: one C
function per group, with chain edges compiled as direct ``goto``\\ s and
indirect edges resolved through an in-function ``switch`` dispatch.
Control leaves a superblock only on bail, halt, interp hand-off, an
exit to a region outside the group, or lockstep-quantum expiry.

Groups are weakly-connected components of the chain graph.  Loops in
real programs close through *call/return* structure — the loop body
calls a helper whose return is an indirect branch — so a hot cycle
nearly always threads at least one indirect edge, and cutting the
component anywhere cuts some cycle: a 32-member cap measured a
per-iteration FFI round trip on every big kernel (1.6–2.2x over warm
packet-compiled), while whole components run 50–150x.  The cap
therefore exists only as a compile-time backstop for pathologically
large programs (:data:`SUPERBLOCK_CAP` members, far above every
registry program); oversized components are chunked in ascending-pc
order, and chunk-crossing edges simply exit one superblock and enter
the next.

The resulting :class:`ModulePlan` is plain picklable data: it travels
with the program object to sharded-evaluation workers exactly like the
per-region plan dict it replaces, and keeps that dict's mapping
interface (iteration and membership over entry pcs, ``get``/``values``
returning the owning superblock's symbol).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vliw.codegen.ir import RegionIR

#: largest member count of one superblock (one C function) — a
#: compile-time backstop only: every chain component of every registry
#: program fits whole (dct8x8 at detail level 3 is 363 members, ~38 s
#: of one-time content-addressed ``cc -O2``), and splitting a
#: component cuts hot call/return cycles, costing two orders of
#: magnitude of steady-state speed
SUPERBLOCK_CAP = 512


@dataclass(frozen=True)
class SuperblockPlan:
    """One superblock: a C function covering several region entries."""

    #: C symbol of the superblock function
    symbol: str
    #: member region entries (packet indices), ascending
    members: tuple[int, ...]


class ModulePlan:
    """Entry-pc -> superblock map of one native module.

    Iterates like the ``{pc0: symbol}`` dict of the old per-region
    plan; additionally exposes the superblock structure and the
    module-wide member and block-site numbering the generated C indexes
    its demotion bitmap and block counters with.
    """

    def __init__(self, superblocks: tuple[SuperblockPlan, ...],
                 block_sites: tuple[int, ...]) -> None:
        self.superblocks = tuple(superblocks)
        #: source block address of each block-counter site, by index
        self.block_sites = tuple(block_sites)
        self._entries: dict[int, tuple[str, int]] = {}
        index = 0
        for sb in self.superblocks:
            for pc0 in sb.members:
                self._entries[pc0] = (sb.symbol, index)
                index += 1
        #: module-wide member count (size of the demotion bitmap)
        self.n_members = index

    def __reduce__(self):
        return (ModulePlan, (self.superblocks, self.block_sites))

    def entry(self, pc0: int) -> tuple[str, int] | None:
        """``(symbol, member_index)`` of entry *pc0*, or None."""
        return self._entries.get(pc0)

    def symbols(self) -> tuple[str, ...]:
        """Every superblock function symbol, in emission order."""
        return tuple(sb.symbol for sb in self.superblocks)

    # -- mapping interface over entry pcs (per-region plan compatible) --

    def __contains__(self, pc0) -> bool:
        return pc0 in self._entries

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def get(self, pc0: int, default=None):
        entry = self._entries.get(pc0)
        return entry[0] if entry is not None else default

    def values(self):
        return [entry[0] for entry in self._entries.values()]


def form_traces(irs_by_pc: dict[int, RegionIR],
                landing_sites=(),
                cap: int = SUPERBLOCK_CAP) -> list[tuple[int, ...]]:
    """Partition region entries into superblock member groups.

    *irs_by_pc* maps entry pc to its (renderable) RegionIR;
    *landing_sites* is the program's indirect-branch landing set
    (``addr_to_packet`` values) — regions containing an indirect branch
    are merged with every landing site present in the module, since any
    of them is a potential chain successor.  Returns member tuples,
    each ascending, the list ordered by first member.
    """
    parent: dict[int, int] = {pc0: pc0 for pc0 in irs_by_pc}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    landings = [pc0 for pc0 in sorted(set(landing_sites))
                if pc0 in irs_by_pc]
    for pc0, ir in irs_by_pc.items():
        for target in ir.chain_targets:
            if target in irs_by_pc:
                union(pc0, target)
        if landings and ir.has_indirect:
            for target in landings:
                union(pc0, target)

    components: dict[int, list[int]] = {}
    for pc0 in sorted(irs_by_pc):
        components.setdefault(find(pc0), []).append(pc0)

    groups: list[tuple[int, ...]] = []
    for root in sorted(components):
        members = components[root]
        # chunk oversized components in ascending-pc order; edges that
        # cross a chunk boundary exit one superblock and enter the next
        for lo in range(0, len(members), cap):
            groups.append(tuple(members[lo:lo + cap]))
    groups.sort(key=lambda members: members[0])
    return groups
