"""Tier-ladder configuration for the profile-guided ``tiered`` backend.

The ladder (see ``docs/tiering.md``): every region entry starts on the
interpretive core, promotes to its Python-emitted rendering after
:attr:`TierConfig.promote_python` executions, promotes again to the
native superblock module after :attr:`TierConfig.promote_native`
executions, and a native region that keeps bailing to the interpreter
demotes back to its Python rendering after
:attr:`TierConfig.demote_bails` bails (the pre-existing native bail
switch, now one rung of the same ladder).

Thresholds come from three places, highest priority first:

1. an explicit :class:`TierConfig` passed to
   :class:`~repro.vliw.platform.PrototypingPlatform`,
   :class:`~repro.vliw.multicore.MultiCoreSoC` or
   :class:`~repro.vliw.compiled.PacketCompiler` (``tier=...``);
2. the ``REPRO_TIER_*`` environment knobs read by :meth:`from_env`;
3. the defaults below.

Unknown ``REPRO_TIER_*`` names and malformed values are hard errors
naming the valid knobs — a misspelled knob silently reverting to the
defaults would invalidate a whole measurement campaign.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import SimulationError

#: executions on the interpretive core before a region entry promotes
#: to its Python-emitted rendering
DEFAULT_PROMOTE_PYTHON = 4
#: total executions before a Python-tier region promotes to the native
#: superblock module (must be >= the Python threshold)
DEFAULT_PROMOTE_NATIVE = 32

#: the environment knobs :meth:`TierConfig.from_env` understands
ENV_KNOBS = ("REPRO_TIER_PROMOTE_PYTHON", "REPRO_TIER_PROMOTE_NATIVE",
             "REPRO_TIER_DEMOTE_BAILS")

_ENV_PREFIX = "REPRO_TIER_"


def _knob_error(name: str, value: str, why: str) -> SimulationError:
    return SimulationError(
        f"invalid tier knob {name}={value!r}: {why}; valid knobs: "
        f"{', '.join(ENV_KNOBS)}")


@dataclass(frozen=True)
class TierConfig:
    """Promotion/demotion thresholds of the execution-tier ladder."""

    #: interpreter executions before promotion to the Python emitter
    promote_python: int = DEFAULT_PROMOTE_PYTHON
    #: total executions before promotion to the native superblock
    promote_native: int = DEFAULT_PROMOTE_NATIVE
    #: native bails before demotion to the Python rendering;
    #: None defers to :data:`repro.vliw.codegen.native.BAIL_SWITCH`
    #: (which stays patchable for tests and experiments)
    demote_bails: int | None = None

    def __post_init__(self) -> None:
        if self.promote_python < 1:
            raise _knob_error("REPRO_TIER_PROMOTE_PYTHON",
                             str(self.promote_python), "must be >= 1")
        if self.promote_native < self.promote_python:
            raise _knob_error(
                "REPRO_TIER_PROMOTE_NATIVE", str(self.promote_native),
                "must be >= the Python promotion threshold")
        if self.demote_bails is not None and self.demote_bails < 1:
            raise _knob_error("REPRO_TIER_DEMOTE_BAILS",
                             str(self.demote_bails), "must be >= 1")

    @classmethod
    def from_env(cls) -> "TierConfig":
        """Thresholds from ``REPRO_TIER_*``, defaults where unset.

        Rejects unknown ``REPRO_TIER_*`` names and non-integer values
        with errors naming the valid knobs.
        """
        for name in os.environ:
            if name.startswith(_ENV_PREFIX) and name not in ENV_KNOBS:
                raise SimulationError(
                    f"unknown tier knob {name}; valid knobs: "
                    f"{', '.join(ENV_KNOBS)}")
        values: dict[str, int] = {}
        for name in ENV_KNOBS:
            raw = os.environ.get(name)
            if raw is None:
                continue
            try:
                values[name] = int(raw, 0)
            except ValueError:
                raise _knob_error(name, raw, "expected an integer") from None
        return cls(
            promote_python=values.get("REPRO_TIER_PROMOTE_PYTHON",
                                      DEFAULT_PROMOTE_PYTHON),
            promote_native=values.get("REPRO_TIER_PROMOTE_NATIVE",
                                      DEFAULT_PROMOTE_NATIVE),
            demote_bails=values.get("REPRO_TIER_DEMOTE_BAILS"))
