"""Latency/bandwidth-modeled network fabric joining SoCs in a cluster.

A :class:`~repro.vliw.cluster.Cluster` connects N
:class:`~repro.vliw.multicore.MultiCoreSoC` instances through a routed
interconnect with mailbox semantics: each SoC maps a
:class:`FabricEndpoint` device in its shared-device segment (offset
``SharedIoMap.fabric``), and a parent-side :class:`NetworkFabric`
routes the words posted there between endpoints at lockstep-window
boundaries.

Timing model
    The fabric keeps time in **target cycles of the cluster frontier**
    (the same domain as the lockstep round base), not in the per-core
    emulated clock of :class:`~repro.vliw.bridge.BusBridge` stamps —
    the emulated clock scales with the sync generation rate, which
    would make routing decisions depend on a simulation knob.  A word
    sent in the window starting at cycle ``T`` is stamped with the
    sender SoC's round base; it leaves the source link no earlier than
    its stamp (egress serialization: one word per ``word_cycles`` per
    source), crosses the fabric in ``latency`` cycles per hop, and
    becomes *visible* at the destination after ingress serialization —
    ingress conflicts are charged through the same rotating-priority
    rule as :class:`~repro.vliw.multicore.SharedBusArbiter` grants
    (source ``(src - window) % nodes`` wins ties first).

The determinism contract (conservative quantum synchronization)
    The cluster's lockstep quantum ``Q`` must not exceed
    :meth:`FabricConfig.min_latency`.  Then any word sent in window
    ``[T, T+Q)`` has ``visible_at >= T + Q``: routing it at the window
    barrier — after every SoC finished the window — cannot miss a
    read, because no read in the same window can legally observe it.
    That makes message visibility (and therefore every observable)
    independent of the order in which SoCs execute their window, which
    is what lets the in-process and cross-process barriers be
    bit-identical (``tests/test_cluster_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BusError, SimulationError
from repro.soc.bus import Device
from repro.utils.bits import u32

#: largest supported cluster: endpoint slots are per-peer, and the
#: endpoint window must fit in the shared-device segment.
MAX_NODES = 16

_TOPOLOGIES = ("xbar", "ring")


@dataclass(frozen=True)
class FabricConfig:
    """Interconnect parameters.

    *latency* is the per-hop routing latency in target cycles;
    *word_cycles* the serialization cost of one word on a link (the
    bandwidth model: a link moves one word per ``word_cycles``);
    *topology* is ``"xbar"`` (every pair one hop) or ``"ring"``
    (messages take ``hop-count * latency`` around the shorter arc).
    """

    latency: int = 16
    word_cycles: int = 2
    topology: str = "xbar"

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise SimulationError(
                f"fabric latency must be >= 1 cycle, got {self.latency}")
        if self.word_cycles < 1:
            raise SimulationError(
                f"fabric word serialization must be >= 1 cycle, "
                f"got {self.word_cycles}")
        if self.topology not in _TOPOLOGIES:
            raise SimulationError(
                f"unknown fabric topology {self.topology!r} "
                f"(choose from {', '.join(_TOPOLOGIES)})")

    def hops(self, src: int, dst: int, nodes: int) -> int:
        """Routed hop count between two nodes (loopback = 1 hop)."""
        if self.topology == "ring" and nodes > 1:
            around = abs(dst - src)
            return max(1, min(around, nodes - around))
        return 1

    def route_latency(self, src: int, dst: int, nodes: int) -> int:
        return self.hops(src, dst, nodes) * self.latency

    def min_latency(self, nodes: int) -> int:
        """Smallest latency over all routes — the quantum ceiling."""
        return self.latency  # every topology's shortest route is 1 hop


@dataclass(frozen=True)
class FabricMessage:
    """One word in flight: *seq* orders words of the same sender."""

    src: int
    dst: int
    value: int
    sent_at: int
    seq: int


@dataclass
class FabricStats:
    """Parent-side routing statistics (identical for both barriers)."""

    words_routed: int = 0
    egress_wait_cycles: int = 0
    ingress_conflicts: int = 0
    ingress_wait_cycles: int = 0
    hop_cycles: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class NetworkFabric:
    """Routes endpoint outboxes between SoCs at window barriers.

    Owned by the cluster parent in *both* barrier modes, so routing
    decisions and statistics are identical whether the SoCs execute
    serially in-process or in parallel workers.
    """

    def __init__(self, nodes: int, config: FabricConfig | None = None) -> None:
        if not 1 <= nodes <= MAX_NODES:
            raise SimulationError(
                f"fabric supports 1..{MAX_NODES} nodes, got {nodes}")
        self.nodes = nodes
        self.config = config or FabricConfig()
        self.stats = FabricStats()
        self._egress_free = [0] * nodes   # next cycle each source link is idle
        self._ingress_free = [0] * nodes  # next cycle each sink port is idle

    def route(self, messages: list[FabricMessage],
              window: int) -> dict[int, list[tuple[int, int, int]]]:
        """Route one window's messages; returns per-destination
        deliveries ``dst -> [(src, value, visible_at), ...]`` in
        visibility order.

        *window* is the lockstep round base the messages were collected
        at; it seeds the rotating ingress tie-break, mirroring the
        shared-bus arbiter's rotating grant priority.
        """
        cfg = self.config
        stats = self.stats
        # global determinism: departure order is (stamp, source, seq)
        inflight = []
        for msg in sorted(messages, key=lambda m: (m.sent_at, m.src, m.seq)):
            depart = max(msg.sent_at, self._egress_free[msg.src])
            stats.egress_wait_cycles += depart - msg.sent_at
            self._egress_free[msg.src] = depart + cfg.word_cycles
            hop_cycles = cfg.route_latency(msg.src, msg.dst, self.nodes)
            stats.hop_cycles += hop_cycles
            inflight.append((depart + hop_cycles, msg))
        deliveries: dict[int, list[tuple[int, int, int]]] = {}
        # rotating ingress priority, like the shared-bus round-robin
        inflight.sort(key=lambda pair: (
            pair[0], (pair[1].src - window) % self.nodes, pair[1].seq))
        for arrival, msg in inflight:
            visible = max(arrival, self._ingress_free[msg.dst])
            if visible > arrival:
                stats.ingress_conflicts += 1
                stats.ingress_wait_cycles += visible - arrival
            self._ingress_free[msg.dst] = visible + cfg.word_cycles
            stats.words_routed += 1
            deliveries.setdefault(msg.dst, []).append(
                (msg.src, msg.value, visible))
        return deliveries


class FabricEndpoint(Device):
    """One SoC's memory-mapped port onto the cluster fabric.

    Lives in the shared-device segment (``SharedIoMap.fabric``), so
    compiled regions bail out to the interpreter for every access and
    the per-SoC :class:`~repro.vliw.multicore.SharedBusArbiter` charges
    intra-SoC contention on it exactly like on the mailbox.

    Register map (slot *p* talks to peer node *p*; never blocking,
    mirroring :class:`~repro.soc.devices.Mailbox` semantics):

    * ``p*8 + 0`` DATA: write sends one word to node *p*, stamped with
      the SoC's current lockstep round base; read pops the oldest
      *visible* word received from node *p* (0 if none visible);
    * ``p*8 + 4`` STATUS: bit0 = a word from node *p* is visible;
    * ``0x80 + 0`` node index, ``0x80 + 4`` node count (the cluster
      analogue of :class:`~repro.soc.devices.CoreIdDevice`).

    Visibility gates on :attr:`now` — the SoC's lockstep round base,
    updated by the scheduler each round like
    :class:`~repro.soc.devices.GlobalCycleTimer` — against the
    ``visible_at`` stamps the parent fabric computed when routing.
    """

    SLOT_STRIDE = 8
    ID_OFFSET = MAX_NODES * SLOT_STRIDE

    size = ID_OFFSET + 8

    def __init__(self, node: int, nodes: int) -> None:
        if not 1 <= nodes <= MAX_NODES:
            raise SimulationError(
                f"fabric supports 1..{MAX_NODES} nodes, got {nodes}")
        if not 0 <= node < nodes:
            raise SimulationError(f"node {node} out of range for {nodes}")
        self.node = node
        self.nodes = nodes
        self.now = 0  # lockstep round base, set by the scheduler
        self.outbox: list[FabricMessage] = []
        self._rx: list[list[tuple[int, int]]] = [[] for _ in range(MAX_NODES)]
        self._seq = 0
        self.sent = 0
        self.received = 0
        self.popped = 0
        self.empty_polls = 0

    def collect_outbox(self) -> list[FabricMessage]:
        """Drain the words sent this window (scheduler-side)."""
        out, self.outbox = self.outbox, []
        return out

    def deliver(self, src: int, value: int, visible_at: int) -> None:
        """Queue a routed word from *src* (scheduler-side)."""
        self._rx[src].append((visible_at, value))
        self.received += 1

    def _visible(self, peer: int) -> bool:
        queue = self._rx[peer]
        return bool(queue) and queue[0][0] <= self.now

    def read(self, offset: int, size: int, cycle: int) -> int:
        if offset >= self.ID_OFFSET:
            reg = offset - self.ID_OFFSET
            if reg == 0:
                return u32(self.node)
            if reg == 4:
                return u32(self.nodes)
            raise BusError("invalid fabric register", offset)
        peer, reg = divmod(offset, self.SLOT_STRIDE)
        if reg == 0:
            if not self._visible(peer):
                self.empty_polls += 1
                return 0
            _visible_at, value = self._rx[peer].pop(0)
            self.popped += 1
            return u32(value)
        if reg == 4:
            return 1 if self._visible(peer) else 0
        raise BusError("invalid fabric register", offset)

    def write(self, offset: int, value: int, size: int, cycle: int) -> None:
        if offset >= self.ID_OFFSET:
            raise BusError("invalid fabric register write", offset)
        peer, reg = divmod(offset, self.SLOT_STRIDE)
        if reg != 0:
            raise BusError("invalid fabric register write", offset)
        if peer >= self.nodes:
            raise BusError(f"fabric send to absent node {peer}", offset)
        self.outbox.append(FabricMessage(
            src=self.node, dst=peer, value=u32(value),
            sent_at=self.now, seq=self._seq))
        self._seq += 1
        self.sent += 1

    def pending(self) -> int:
        """Words received but not yet popped (any visibility)."""
        return sum(len(queue) for queue in self._rx)

    def device_stats(self) -> dict:
        return {
            "sent": self.sent,
            "received": self.received,
            "popped": self.popped,
            "empty_polls": self.empty_polls,
            "pending": self.pending(),
        }
