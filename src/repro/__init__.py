"""Cycle-accurate binary translation for SoC rapid prototyping.

A from-scratch reproduction of Schnerr, Bringmann & Rosenstiel,
"Cycle Accurate Binary Translation for Simulation Acceleration in Rapid
Prototyping of SoCs" (DATE 2005): a static binary translator that turns
object code for an embedded SoC core (TriCore-like) into code for a
VLIW prototyping platform (C6x-like), annotated so that a
synchronization device generates the source processor's clock for the
attached SoC hardware in parallel with execution.

Typical use::

    from repro import (assemble, translate, PrototypingPlatform,
                       CycleAccurateISS)

    obj = assemble(my_source)
    reference = CycleAccurateISS(obj).run()
    result = translate(obj, level=2)
    run = PrototypingPlatform(result.program).run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.arch.model import (
    SourceArch,
    TargetArch,
    default_source_arch,
    default_target_arch,
)
from repro.arch.xmlio import source_arch_from_xml, source_arch_to_xml
from repro.debug.debugger import Debugger
from repro.errors import ReproError
from repro.isa.tricore.assembler import assemble
from repro.minic.compiler import compile_source
from repro.objfile.elf import ObjectFile
from repro.refsim.iss import (
    CycleAccurateISS,
    FunctionalISS,
    InterpretedISS,
    RunResult,
)
from repro.refsim.rtlsim import RtlSimulator
from repro.translator.driver import (
    BinaryTranslator,
    TranslationOptions,
    TranslationResult,
    translate,
)
from repro.vliw.platform import PlatformResult, PrototypingPlatform

__version__ = "1.0.0"

__all__ = [
    "BinaryTranslator",
    "CycleAccurateISS",
    "Debugger",
    "FunctionalISS",
    "InterpretedISS",
    "ObjectFile",
    "PlatformResult",
    "PrototypingPlatform",
    "ReproError",
    "RtlSimulator",
    "RunResult",
    "SourceArch",
    "TargetArch",
    "TranslationOptions",
    "TranslationResult",
    "assemble",
    "compile_source",
    "default_source_arch",
    "default_target_arch",
    "source_arch_from_xml",
    "source_arch_to_xml",
    "translate",
]
