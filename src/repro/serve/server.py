"""``repro-serve``: a resident simulation service.

A long-lived asyncio HTTP/JSON server that keeps one persistent
:class:`~repro.eval.sharded.ShardedRunner` — with its region-source,
IR and native ``.so`` caches — warm across requests, so only the first
request for a (program, level, backend) pays translation and
compilation; every later one multiplexes straight onto warm caches.
The HTTP layer is a deliberately minimal HTTP/1.0-style implementation
on :func:`asyncio.start_server` (stdlib only, every response
``Connection: close``), because the protocol surface is five routes:

* ``POST /jobs`` — submit a ``translate``/``measure``/``fuzz`` job
  (body: JSON, see :mod:`repro.serve.protocol`); responds 202 with the
  job record
* ``GET /jobs`` / ``GET /jobs/<id>`` — job table / one job's status
* ``GET /jobs/<id>/stream`` — NDJSON: replays completed shard records,
  then streams live completions until the job reaches a terminal state
* ``POST /jobs/<id>/cancel`` — cooperative cancel (queued jobs drop,
  running sweeps stop and cancel their pending shards)
* ``GET /healthz``, ``GET /metrics`` — liveness and counters
* ``POST /shutdown`` — clean shutdown (used by tests and CI)
"""

from __future__ import annotations

import asyncio
import json

from repro.eval.sharded import ShardedRunner, default_jobs
from repro.serve.jobs import JobManager
from repro.serve.metrics import Metrics
from repro.serve.protocol import ProtocolError, ndjson_line, validate_job

#: memo bound the service runs the runner with unless told otherwise —
#: roomy enough to keep a whole registry sweep warm, bounded so a
#: resident process cannot grow without limit
DEFAULT_MAX_CACHED = 256

MAX_BODY = 4 * 1024 * 1024


class ReproServe:
    """The server object: one runner, one job queue, one listener."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int | None = None,
                 max_cached: int | None = DEFAULT_MAX_CACHED) -> None:
        self.host = host
        self.port = port  # 0 picks a free port; updated after start()
        self.jobs = jobs if jobs is not None else default_jobs()
        self.runner = ShardedRunner(jobs=self.jobs, persistent=True,
                                    max_cached=max_cached)
        self.metrics = Metrics()
        self.manager = JobManager(self.runner, self.metrics)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        await self.manager.shutdown()

    def run_forever(self) -> None:
        """Blocking entry point for the console script."""
        async def main() -> None:
            await self.start()
            print(f"repro-serve listening on {self.host}:{self.port} "
                  f"(jobs={self.jobs})", flush=True)
            await self.serve_until_shutdown()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await self._read_request(reader)
            await self._route(method, path, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:  # a broken request must not kill the loop
            try:
                await self._respond(writer, 500,
                                    {"error": f"{type(exc).__name__}: "
                                              f"{exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise ConnectionError(f"malformed request line "
                                  f"{request_line!r}") from None
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.lower() == "content-length":
                length = min(int(value.strip() or 0), MAX_BODY)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _respond(self, writer, status: int, payload: dict,
                       code_text: str = "") -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        text = code_text or {200: "OK", 202: "Accepted",
                             400: "Bad Request", 404: "Not Found",
                             405: "Method Not Allowed",
                             500: "Internal Server Error"}.get(status, "")
        writer.write(
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, dict(
                ok=True, jobs_in_flight=self.manager.in_flight,
                workers=self.jobs))
            return
        if path == "/metrics" and method == "GET":
            await self._respond(writer, 200, self.metrics.snapshot(
                runner=self.runner,
                jobs_in_flight=self.manager.in_flight))
            return
        if path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, dict(shutting_down=True))
            self._shutdown.set()
            return
        if path == "/jobs" and method == "POST":
            await self._submit(body, writer)
            return
        if path == "/jobs" and method == "GET":
            await self._respond(writer, 200, dict(
                jobs=[job.describe()
                      for job in self.manager.jobs.values()]))
            return
        if path.startswith("/jobs/"):
            await self._job_route(method, path, writer)
            return
        await self._respond(writer, 404, {"error": f"no route {path!r}"})

    async def _submit(self, body: bytes, writer) -> None:
        try:
            params = validate_job(json.loads(body.decode("utf-8") or "null"))
        except (ProtocolError, ValueError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        job = self.manager.submit(params)
        await self._respond(writer, 202, job.describe())

    async def _job_route(self, method: str, path: str, writer) -> None:
        parts = path.strip("/").split("/")
        job = self.manager.jobs.get(parts[1]) if len(parts) >= 2 else None
        if job is None:
            await self._respond(writer, 404,
                                {"error": f"no such job {path!r}"})
            return
        action = parts[2] if len(parts) == 3 else None
        if action is None and method == "GET":
            await self._respond(writer, 200, job.describe())
        elif action == "cancel" and method == "POST":
            self.manager.cancel(job)
            await self._respond(writer, 200, job.describe())
        elif action == "stream" and method == "GET":
            await self._stream(job, writer)
        else:
            await self._respond(writer, 405,
                                {"error": f"{method} not allowed here"})

    async def _stream(self, job, writer) -> None:
        """NDJSON: backlog, then live records until the job finishes.

        No Content-Length and ``Connection: close`` — the client reads
        lines until EOF.  A consumer that disconnects mid-stream only
        stops *this* replay; the job itself keeps running (cancel is an
        explicit ``POST /jobs/<id>/cancel``).
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        async for record in self.manager.stream(job):
            writer.write(ndjson_line(record))
            await writer.drain()
        writer.write(ndjson_line({"job": job.id, "status": job.status,
                                  "error": job.error}))
        await writer.drain()
