"""Wire protocol shared by ``repro-serve`` and ``repro-submit``.

Jobs are plain JSON objects; results stream back as NDJSON (one JSON
object per line).  The encoding layer here is deliberately the *only*
place simulation results are converted for the wire, and it is used by
both the server (encoding shard outcomes) and the client's
``--check-serial`` mode (encoding locally computed serial results), so
"bit-identical to the serial path" means comparing two outputs of the
same canonical, injective encoding:

* ``bytes`` become ``{"__bytes__": <base64>}`` — never a lossy string
* tuples and lists both become JSON arrays (the observables dicts mix
  them freely; equality of encoded forms therefore means equality of
  values, which is what the differential contract compares)
* dict keys become strings via ``str()`` (observables use int keys for
  block-execution counters)

Job types::

    {"type": "measure", "programs": [...], "levels": [...],
     "backend": "interp", "sync_rate": 1.0, "cores": 1,
     "quantum": "adaptive", "measure_rtl": false}
    {"type": "translate", "programs": [...], "levels": [...]}
    {"type": "fuzz", "seed": 42, "count": 10, "levels": [...],
     "backends": [...], "cores": 2}
"""

from __future__ import annotations

import base64
import json

from repro.eval.sharded import ShardOutcome, ShardSpec

JOB_TYPES = ("translate", "measure", "fuzz")

#: sweep parameters accepted by a measure job, with defaults
MEASURE_DEFAULTS = dict(levels=(0, 1, 2, 3), backend="interp",
                        sync_rate=1.0, cores=1, quantum="adaptive",
                        measure_rtl=False)


class ProtocolError(ValueError):
    """A malformed job request (maps to HTTP 400)."""


# -- canonical encoding ------------------------------------------------------


def encode_value(value):
    """Recursively convert a result value to a canonical JSON form."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ProtocolError(
        f"cannot encode {type(value).__name__} for the wire")


def decode_value(value):
    """Invert :func:`encode_value` (bytes only; containers stay JSON)."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def run_result_fields(result) -> dict:
    """Canonical field dict of a reference-ISS :class:`RunResult`."""
    return dict(
        instructions=result.instructions,
        cycles=result.cycles,
        regs=list(result.regs),
        data_image=result.data_image,
        uart_output=result.uart_output,
        bus_trace=[(a.cycle, a.kind, a.addr, a.value, a.size)
                   for a in result.bus_trace],
        exit_code=result.exit_code,
        halted=result.halted,
        branch_stats=vars(result.branch_stats),
        cache_stats=vars(result.cache_stats),
    )


def spec_fields(spec: ShardSpec) -> dict:
    """JSON-safe identity of a shard (registry programs only)."""
    return dict(program=spec.program, kind=spec.kind, level=spec.level,
                backend=spec.backend, sync_rate=spec.sync_rate,
                cores=spec.cores, quantum=spec.quantum)


def encode_outcome(outcome: ShardOutcome, seq: int) -> dict:
    """One NDJSON record: shard identity + measurement payload.

    *seq* is the shard's submission index; streamed records arrive in
    completion order, and clients sort by ``seq`` to reassemble the
    deterministic submission-order sweep the serial runner produces.
    """
    spec = outcome.spec
    if spec.kind == "platform":
        payload = encode_value(outcome.result.observables())
    elif spec.kind == "reference":
        payload = encode_value(run_result_fields(outcome.result))
    else:
        payload = None
    return dict(seq=seq, spec=spec_fields(spec),
                wall_seconds=outcome.wall_seconds, pid=outcome.pid,
                regions_generated=outcome.regions_generated,
                regions_from_cache=outcome.regions_from_cache,
                lockstep=(None if outcome.lockstep is None
                          else encode_value(outcome.lockstep)),
                result=payload)


def ndjson_line(record: dict) -> bytes:
    """Serialize one record as an NDJSON line (sorted keys, canonical)."""
    return (json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


# -- request validation ------------------------------------------------------


def _require(payload: dict, key: str, types, default=None):
    value = payload.get(key, default)
    if value is None:
        raise ProtocolError(f"job is missing required field {key!r}")
    if not isinstance(value, types):
        raise ProtocolError(f"field {key!r} has the wrong type")
    return value


def _levels(payload: dict, default=(0, 1, 2, 3)) -> tuple[int, ...]:
    levels = payload.get("levels", list(default))
    if (not isinstance(levels, (list, tuple)) or not levels
            or any(level not in (0, 1, 2, 3) for level in levels)):
        raise ProtocolError("'levels' must be a non-empty subset of "
                            "[0, 1, 2, 3]")
    return tuple(int(level) for level in levels)


def validate_job(payload) -> dict:
    """Check a submitted job body; returns the normalized parameters.

    Raises :class:`ProtocolError` with a client-readable message for
    anything malformed — the server maps that to HTTP 400 so a bad
    request never reaches the runner.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("job body must be a JSON object")
    job_type = payload.get("type")
    if job_type not in JOB_TYPES:
        raise ProtocolError(f"unknown job type {job_type!r}; choose from "
                            f"{', '.join(JOB_TYPES)}")
    normalized = {"type": job_type}
    if job_type in ("measure", "translate"):
        programs = _require(payload, "programs", (list, tuple))
        if not programs or not all(isinstance(p, str) and p
                                   for p in programs):
            raise ProtocolError("'programs' must be a non-empty list of "
                                "registry program names")
        from repro.programs.registry import (
            cluster_program_names,
            program_names,
            shared_program_names,
        )

        known = set(program_names()) | set(shared_program_names()) \
            | set(cluster_program_names())
        unknown = [p for p in programs if p not in known]
        if unknown:
            raise ProtocolError(
                f"unknown program(s): {', '.join(sorted(unknown))}")
        normalized["programs"] = list(programs)
        normalized["levels"] = list(_levels(payload))
    if job_type == "measure":
        from repro.vliw.codegen import backend_names

        backend = payload.get("backend", MEASURE_DEFAULTS["backend"])
        if backend not in backend_names():
            raise ProtocolError(f"unknown backend {backend!r}; choose from "
                                f"{', '.join(backend_names())}")
        cores = payload.get("cores", 1)
        if not isinstance(cores, int) or cores < 1:
            raise ProtocolError("'cores' must be an integer >= 1")
        quantum = payload.get("quantum", MEASURE_DEFAULTS["quantum"])
        if quantum != "adaptive" and (not isinstance(quantum, int)
                                      or isinstance(quantum, bool)
                                      or quantum < 1):
            raise ProtocolError("'quantum' must be 'adaptive' or an "
                                "integer >= 1")
        sync_rate = payload.get("sync_rate", 1.0)
        if not isinstance(sync_rate, (int, float)) or sync_rate <= 0:
            raise ProtocolError("'sync_rate' must be a positive number")
        normalized.update(backend=backend, cores=cores, quantum=quantum,
                          sync_rate=float(sync_rate),
                          measure_rtl=bool(payload.get("measure_rtl",
                                                       False)))
    if job_type == "fuzz":
        seed = payload.get("seed", 42)
        count = payload.get("count", 10)
        cores = payload.get("cores", 2)
        if (not isinstance(seed, int) or seed < 0
                or not isinstance(count, int) or count < 1
                or not isinstance(cores, int) or cores < 1):
            raise ProtocolError("'seed' must be >= 0 and 'count'/'cores' "
                                "must be integers >= 1")
        backends = payload.get("backends", ["interp", "compiled"])
        from repro.vliw.codegen import backend_names

        if (not isinstance(backends, (list, tuple)) or not backends
                or any(b not in backend_names() for b in backends)):
            raise ProtocolError("'backends' must be a non-empty list of "
                                f"registered backends "
                                f"({', '.join(backend_names())})")
        normalized.update(seed=seed, count=count, cores=cores,
                          backends=list(backends),
                          levels=list(_levels(payload)))
    return normalized
