"""Simulation-as-a-service: the resident ``repro-serve`` server.

The paper's pitch is that cycle-accurate speed comes from amortizing
translation cost; this package amortizes it across *processes and
users* instead of only across a single run.  A long-lived asyncio
server (:mod:`repro.serve.server`) accepts translate/measure/fuzz jobs
over HTTP/JSON, multiplexes them onto one persistent
:class:`~repro.eval.sharded.ShardedRunner` whose region-source/IR/
``.so`` caches stay warm across requests, and streams per-shard
results back as NDJSON (:mod:`repro.serve.protocol`).  The batch
client (:mod:`repro.serve.client`, ``repro-submit``) reassembles the
stream into deterministic submission order and can assert bit-identity
against the serial runner.

Entry points: the ``repro-serve``/``repro-submit`` console scripts,
``python -m repro.serve``, and :func:`repro.cli.serve_main` /
:func:`repro.cli.submit_main`.
"""

from repro.serve.client import submit_main
from repro.serve.server import ReproServe

__all__ = ["ReproServe", "submit_main"]
