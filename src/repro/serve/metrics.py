"""Service metrics: job counters, cache warmth, wall-clock histograms.

Updated from the job-execution thread and read from the asyncio
handler, so every access takes one lock.  The snapshot folds in the
runner's own memo counters (``translations_built`` vs
``translation_hits``) — the pair that proves a repeated request hit
warm caches — next to the per-shard region counters
(``regions_generated`` vs ``regions_from_cache``) aggregated across
every shard the service has executed.
"""

from __future__ import annotations

import threading
import time

#: histogram bucket upper bounds, in seconds (an implicit +inf bucket
#: catches everything slower)
WALL_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


class Metrics:
    """Counters and histograms for one server process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._jobs_submitted: dict[str, int] = {}
        self._jobs_finished: dict[str, int] = {}  # keyed by final status
        self._shards = 0
        self._regions_generated = 0
        self._regions_from_cache = 0
        self._shard_wall_seconds = 0.0
        #: lockstep scheduling aggregates over every multi-core shard
        self._lockstep = dict(multicore_shards=0, rounds=0,
                              runahead_rounds=0, runahead_window_cycles=0,
                              inline_shared_calls=0, interp_bails=0)
        #: backend -> [count per bucket] + one overflow slot
        self._wall_histograms: dict[str, list[int]] = {}

    def job_submitted(self, job_type: str) -> None:
        with self._lock:
            self._jobs_submitted[job_type] = \
                self._jobs_submitted.get(job_type, 0) + 1

    def job_finished(self, status: str) -> None:
        with self._lock:
            self._jobs_finished[status] = \
                self._jobs_finished.get(status, 0) + 1

    def observe_shard(self, backend: str, wall_seconds: float,
                      regions_generated: int,
                      regions_from_cache: int,
                      lockstep: dict | None = None) -> None:
        with self._lock:
            self._shards += 1
            self._regions_generated += regions_generated
            self._regions_from_cache += regions_from_cache
            self._shard_wall_seconds += wall_seconds
            if lockstep is not None:
                agg = self._lockstep
                agg["multicore_shards"] += 1
                agg["rounds"] += lockstep.get("rounds", 0)
                agg["runahead_rounds"] += lockstep.get("runahead_rounds", 0)
                agg["runahead_window_cycles"] += \
                    lockstep.get("runahead_window_cycles", 0)
                for core in lockstep.get("per_core", ()):
                    agg["inline_shared_calls"] += \
                        core.get("inline_shared_calls", 0)
                    agg["interp_bails"] += core.get("interp_bails", 0)
            histogram = self._wall_histograms.setdefault(
                backend, [0] * (len(WALL_BUCKETS) + 1))
            for index, bound in enumerate(WALL_BUCKETS):
                if wall_seconds <= bound:
                    histogram[index] += 1
                    break
            else:
                histogram[-1] += 1

    def snapshot(self, runner=None, jobs_in_flight: int = 0) -> dict:
        """Everything ``GET /metrics`` reports, as one JSON-safe dict."""
        with self._lock:
            out = dict(
                uptime_seconds=time.time() - self._started,
                jobs_in_flight=jobs_in_flight,
                jobs_submitted=dict(self._jobs_submitted),
                jobs_finished=dict(self._jobs_finished),
                shards_executed=self._shards,
                shard_wall_seconds=self._shard_wall_seconds,
                regions_generated=self._regions_generated,
                regions_from_cache=self._regions_from_cache,
                lockstep=dict(self._lockstep),
                wall_histograms={
                    backend: dict(
                        buckets_seconds=list(WALL_BUCKETS),
                        counts=list(counts))
                    for backend, counts in self._wall_histograms.items()},
            )
        if runner is not None:
            out["runner"] = dict(runner.stats)
            out["runner"]["cancelled_shards"] = runner.cancelled_shards
            out["runner"]["jobs"] = runner.jobs
        return out
