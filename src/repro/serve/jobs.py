"""Job queue: ids, status, cancellation, result streaming.

One asyncio worker task drains the queue and runs each job to
completion in a single dedicated executor thread, so the shared
:class:`~repro.eval.sharded.ShardedRunner` (whose memos are plain
dicts) is only ever touched from one thread at a time — the *shards*
of a job still parallelize across the runner's persistent worker
pool.  Results accumulate on the job record as already-encoded NDJSON
records; streaming consumers replay the backlog and then follow live
completions through a per-job wakeup event.

Cancellation is cooperative: a queued job is dropped before it starts,
a running measure job closes its streaming iterator between outcomes —
which, on the hardened runner, cancels every shard that has not
started yet instead of waiting the sweep out — and a running fuzz job
stops between programs.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ShardError
from repro.eval.sharded import ShardedRunner, ShardSpec, registry_specs
from repro.serve.metrics import Metrics
from repro.serve.protocol import encode_outcome, encode_value

#: statuses a job can end in (streaming stops at any of these)
TERMINAL = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted unit of service work."""

    id: str
    type: str
    params: dict
    status: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    cancel_requested: bool = False
    #: encoded NDJSON records, appended by the execution thread
    results: list[dict] = field(default_factory=list)
    summary: dict | None = None
    wakeup: asyncio.Event = field(default_factory=asyncio.Event)

    def describe(self) -> dict:
        """The JSON body of ``GET /jobs/<id>``."""
        return dict(id=self.id, type=self.type, status=self.status,
                    params=self.params, created=self.created,
                    started=self.started, finished=self.finished,
                    records=len(self.results), error=self.error,
                    summary=self.summary)


class JobManager:
    """Owns the job table, the queue and the execution thread."""

    def __init__(self, runner: ShardedRunner, metrics: Metrics) -> None:
        self.runner = runner
        self.metrics = metrics
        self.jobs: dict[str, Job] = {}
        self._counter = 0
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._worker: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._worker = asyncio.create_task(self._drain())

    async def shutdown(self) -> None:
        """Stop cleanly: drop queued jobs, cancel the running one."""
        for job in self.jobs.values():
            if job.status in ("queued", "running"):
                job.cancel_requested = True
        if self._worker is not None:
            self._queue.put_nowait(None)  # type: ignore[arg-type]
            await self._worker
            self._worker = None
        self._executor.shutdown(wait=True)
        self.runner.close()

    @property
    def in_flight(self) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.status in ("queued", "running"))

    # -- submission / cancellation --------------------------------------

    def submit(self, params: dict) -> Job:
        """Enqueue a validated job; returns the (queued) job record."""
        self._counter += 1
        job = Job(id=f"job-{self._counter:04d}", type=params["type"],
                  params=params)
        self.jobs[job.id] = job
        self.metrics.job_submitted(job.type)
        self._queue.put_nowait(job)
        return job

    def cancel(self, job: Job) -> None:
        job.cancel_requested = True
        if job.status == "queued":
            # the worker skips it when it reaches the queue entry
            self._finish(job, "cancelled")

    # -- streaming -------------------------------------------------------

    async def stream(self, job: Job):
        """Yield every result record: backlog first, then live."""
        index = 0
        while True:
            job.wakeup.clear()
            while index < len(job.results):
                yield job.results[index]
                index += 1
            if job.status in TERMINAL:
                return
            await job.wakeup.wait()

    # -- execution -------------------------------------------------------

    async def _drain(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:  # shutdown sentinel
                return
            if job.status in TERMINAL:  # cancelled while queued
                continue
            if job.cancel_requested:
                self._finish(job, "cancelled")
                continue
            job.status = "running"
            job.started = time.time()
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self._execute, job)

    def _publish(self, job: Job, record: dict) -> None:
        """Append a record and wake streamers (runs in the job thread)."""
        job.results.append(record)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(job.wakeup.set)

    def _finish(self, job: Job, status: str, error: str | None = None
                ) -> None:
        job.status = status
        job.finished = time.time()
        job.error = error
        self.metrics.job_finished(status)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(job.wakeup.set)

    def _execute(self, job: Job) -> None:
        """Run one job to completion (in the dedicated thread)."""
        stats_before = dict(self.runner.stats)
        try:
            if job.type == "measure":
                cancelled = self._execute_measure(job)
            elif job.type == "translate":
                cancelled = self._execute_translate(job)
            else:
                cancelled = self._execute_fuzz(job)
        except ShardError as exc:
            self._finish(job, "failed",
                         error=f"{exc} (spec: {exc.spec.describe()})"
                         if exc.spec else str(exc))
            return
        except Exception as exc:  # job bodies must never kill the worker
            self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
            return
        job.summary = self._summarize(job, stats_before)
        self._publish(job, {"summary": job.summary, "job": job.id})
        self._finish(job, "cancelled" if cancelled else "done")

    def _summarize(self, job: Job, stats_before: dict) -> dict:
        """Per-job cache-warmth aggregates, for the final record.

        ``translations_built == 0`` and ``regions_generated == 0``
        together mean the request ran fully warm: every translation
        came out of the runner's memo and every region out of a
        shipped cache.
        """
        deltas = {key: self.runner.stats[key] - stats_before.get(key, 0)
                  for key in self.runner.stats}
        regions_generated = sum(r.get("regions_generated", 0)
                                for r in job.results if "seq" in r)
        regions_from_cache = sum(r.get("regions_from_cache", 0)
                                 for r in job.results if "seq" in r)
        return dict(records=len(job.results),
                    regions_generated=regions_generated,
                    regions_from_cache=regions_from_cache,
                    runner_delta=deltas)

    def _execute_measure(self, job: Job) -> bool:
        params = job.params
        specs = registry_specs(
            params["programs"], levels=tuple(params["levels"]),
            backend=params["backend"], sync_rate=params["sync_rate"],
            measure_rtl=params["measure_rtl"], cores=params["cores"],
            quantum=params.get("quantum", "adaptive"))
        seq_of = {spec: index for index, spec in enumerate(specs)}
        stream = self.runner.run_all(specs, stream=True)
        try:
            for outcome in stream:
                if job.cancel_requested:
                    return True
                spec = outcome.spec
                label = spec.backend if spec.kind == "platform" else spec.kind
                self.metrics.observe_shard(label, outcome.wall_seconds,
                                           outcome.regions_generated,
                                           outcome.regions_from_cache,
                                           lockstep=outcome.lockstep)
                self._publish(job, encode_outcome(outcome, seq_of[spec]))
            return job.cancel_requested
        finally:
            # closing mid-iteration is the stream-abandon path: the
            # hardened runner cancels every not-yet-started shard
            stream.close()

    def _execute_translate(self, job: Job) -> bool:
        params = job.params
        seq = 0
        for name in params["programs"]:
            for level in params["levels"]:
                if job.cancel_requested:
                    return True
                translation = self.runner.translation(
                    ShardSpec(program=name, level=level))
                self._publish(job, dict(
                    seq=seq, program=name, level=level,
                    stats=encode_value(vars(translation.stats))))
                seq += 1
        return False

    def _execute_fuzz(self, job: Job) -> bool:
        from repro.fuzz import FuzzConfig, generate
        from repro.fuzz.oracle import check_generated

        params = job.params
        config = FuzzConfig(levels=tuple(params["levels"]),
                            backends=tuple(params["backends"]),
                            cores=params["cores"])
        for index in range(params["count"]):
            if job.cancel_requested:
                return True
            verdict = check_generated(generate(params["seed"], index),
                                      config)
            self._publish(job, dict(
                seq=index, index=index, ok=verdict.ok,
                exit_code=verdict.exit_code, summary=verdict.summary()))
        return False
