"""``repro-submit``: batch client for a running ``repro-serve``.

Submits one job, follows its NDJSON stream, and reassembles the
shard records into deterministic submission order (the server stamps
every record with its submission index ``seq``; completion order is
whatever the pool produced).  With ``--check-serial`` the client also
runs the equivalent serial :func:`repro.eval.runner.measure_program`
sweep locally and asserts the served observables are bit-identical —
the end-to-end determinism contract of the service.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys


def request(host: str, port: int, method: str, path: str,
            body: dict | None = None, timeout: float = 600.0
            ) -> tuple[int, dict]:
    """One JSON request/response round trip."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None \
            else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        response = conn.getresponse()
        data = response.read().decode("utf-8")
        return response.status, (json.loads(data) if data else {})
    finally:
        conn.close()


def stream(host: str, port: int, job_id: str, timeout: float = 600.0):
    """Yield parsed NDJSON records of ``GET /jobs/<id>/stream``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/stream")
        response = conn.getresponse()
        if response.status != 200:
            raise RuntimeError(f"stream failed: HTTP {response.status} "
                               f"{response.read().decode('utf-8')}")
        for line in response:
            line = line.strip()
            if line:
                yield json.loads(line)
    finally:
        conn.close()


def submit(host: str, port: int, payload: dict,
           timeout: float = 600.0) -> dict:
    """POST a job; returns the job record or raises on rejection."""
    status, body = request(host, port, "POST", "/jobs", body=payload,
                           timeout=timeout)
    if status != 202:
        raise RuntimeError(f"job rejected: HTTP {status} "
                           f"{body.get('error', body)}")
    return body


def collect(host: str, port: int, job_id: str, timeout: float = 600.0
            ) -> tuple[list[dict], dict]:
    """Stream a job to the end; returns (seq-sorted records, final)."""
    records, final = [], {}
    for record in stream(host, port, job_id, timeout=timeout):
        if "seq" in record:
            records.append(record)
        else:
            final.update(record)  # the summary, then the status line
    records.sort(key=lambda record: record["seq"])
    return records, final


# -- serial cross-check ------------------------------------------------------


def serial_records(params: dict) -> dict:
    """What the serial path produces, keyed like served records.

    Runs :func:`measure_program` per program and encodes every result
    through the same protocol encoder the server uses, so comparing
    entries is comparing canonical encodings of the same observables.
    """
    from repro.eval.runner import measure_program
    from repro.serve.protocol import encode_value, run_result_fields

    expected: dict[tuple, object] = {}
    for name in params["programs"]:
        measurement = measure_program(
            name, levels=tuple(params["levels"]),
            backend=params["backend"], sync_rate=params["sync_rate"],
            cores=params["cores"],
            quantum=params.get("quantum", "adaptive"))
        expected[(name, "reference", None)] = encode_value(
            run_result_fields(measurement.reference))
        for level in params["levels"]:
            expected[(name, "platform", level)] = encode_value(
                measurement.levels[level].result.observables())
    return expected


def check_serial(records: list[dict], params: dict) -> list[str]:
    """Compare served records to the serial path; returns mismatches."""
    expected = serial_records(params)
    problems = []
    seen = set()
    for record in records:
        spec = record["spec"]
        kind = spec["kind"]
        if kind == "rtl":
            continue  # its measurement is wall clock, not a result
        key = (spec["program"], kind,
               spec["level"] if kind == "platform" else None)
        seen.add(key)
        if key not in expected:
            problems.append(f"unexpected shard {key}")
        elif record["result"] != expected[key]:
            problems.append(f"observables differ from serial path: {key}")
    for key in sorted(expected.keys() - seen, key=str):
        problems.append(f"shard missing from served sweep: {key}")
    return problems


# -- CLI ---------------------------------------------------------------------


def _parse_list(text: str) -> list[str]:
    return [part for part in text.split(",") if part]


def build_payload(args) -> dict:
    payload: dict = {"type": args.type}
    if args.type in ("measure", "translate"):
        if not args.programs:
            raise SystemExit("error: --programs is required for "
                             "measure/translate jobs")
        payload["programs"] = _parse_list(args.programs)
        payload["levels"] = [int(level)
                             for level in _parse_list(args.levels)]
    if args.type == "measure":
        quantum = args.quantum
        if quantum != "adaptive":
            quantum = int(quantum)
        payload.update(backend=args.backend, cores=args.cores,
                       sync_rate=args.sync_rate, quantum=quantum)
    if args.type == "fuzz":
        payload.update(seed=args.seed, count=args.count, cores=args.cores,
                       levels=[int(level)
                               for level in _parse_list(args.levels)],
                       backends=_parse_list(args.backends))
    return payload


def _print_measure(records: list[dict]) -> None:
    for record in records:
        spec = record["spec"]
        wall = record["wall_seconds"] * 1e3
        if spec["kind"] == "platform":
            result = record["result"]
            print(f"  L{spec['level']} {spec['program']} "
                  f"[{spec['backend']}]: exit={result['exit_code']} "
                  f"target_cycles={result['target_cycles']} "
                  f"emulated_cycles={result['emulated_cycles']} "
                  f"wall={wall:.1f}ms")
        elif spec["kind"] == "reference":
            result = record["result"]
            print(f"  ref {spec['program']}: exit={result['exit_code']} "
                  f"instructions={result['instructions']} "
                  f"cycles={result['cycles']} wall={wall:.1f}ms")
        else:
            print(f"  rtl {spec['program']}: wall={wall:.1f}ms")


def submit_main(argv: list[str] | None = None) -> int:
    """Submit a sweep to repro-serve and reassemble the results."""
    parser = argparse.ArgumentParser(
        prog="repro-submit", description=submit_main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--type", default="measure",
                        choices=("measure", "translate", "fuzz"))
    parser.add_argument("--programs", default="",
                        help="comma-separated registry program names")
    parser.add_argument("--levels", default="0,1,2,3")
    parser.add_argument("--backend", default="interp")
    parser.add_argument("--backends", default="interp,compiled",
                        help="for fuzz jobs")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--quantum", default="adaptive",
                        help="for measure jobs with --cores N: 'adaptive' "
                             "or a fixed integer lockstep quantum")
    parser.add_argument("--sync-rate", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--json", help="write seq-ordered records here")
    parser.add_argument("--check-serial", action="store_true",
                        help="run the serial sweep locally and assert "
                             "bit-identical observables")
    parser.add_argument("--no-stream", action="store_true",
                        help="submit and print the job id, don't wait")
    args = parser.parse_args(argv)

    try:
        job = submit(args.host, args.port, build_payload(args),
                     timeout=args.timeout)
    except (OSError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {job['id']} ({job['type']}) to "
          f"{args.host}:{args.port}")
    if args.no_stream:
        return 0
    try:
        records, final = collect(args.host, args.port, job["id"],
                                 timeout=args.timeout)
    except (OSError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    status = final.get("status", "done")
    if args.type == "measure":
        _print_measure(records)
    else:
        for record in records:
            line = {key: value for key, value in record.items()
                    if key != "seq"}
            print(f"  {json.dumps(line, sort_keys=True)}")
    summary = final.get("summary") or {}
    print(f"{job['id']}: {status}, {len(records)} records, "
          f"regions_generated={summary.get('regions_generated')}, "
          f"regions_from_cache={summary.get('regions_from_cache')}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(records, handle, sort_keys=True, indent=2)
            handle.write("\n")
    if status != "done":
        print(f"error: job ended {status}: {final.get('error')}",
              file=sys.stderr)
        return 1
    if args.check_serial:
        if args.type != "measure":
            print("error: --check-serial only applies to measure jobs",
                  file=sys.stderr)
            return 1
        problems = check_serial(records, dict(
            programs=_parse_list(args.programs),
            levels=[int(level) for level in _parse_list(args.levels)],
            backend=args.backend, cores=args.cores,
            sync_rate=args.sync_rate,
            quantum=(args.quantum if args.quantum == "adaptive"
                     else int(args.quantum))))
        if problems:
            for problem in problems:
                print(f"MISMATCH: {problem}", file=sys.stderr)
            return 1
        print("serial check: served observables are bit-identical to "
              "the serial runner")
    return 0
