"""``python -m repro.serve`` — start the resident simulation service."""

from repro.cli import serve_main

if __name__ == "__main__":
    raise SystemExit(serve_main())
