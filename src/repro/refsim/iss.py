"""Instruction-set simulators of the source processor.

Three of the paper's Section 2 taxonomy points are implemented here:

* :class:`InterpretedISS` — decodes every instruction on every
  execution ("the most commonly used method … suffers from low
  performance");
* :class:`FunctionalISS` — caches decoded instructions per address,
  the software analogue of a just-in-time compiled ISS;
* :class:`CycleAccurateISS` — the cached simulator plus the full
  timing model (dual-issue pipeline, static branch prediction,
  instruction cache).  This is the stand-in for the TriCore TC10GP
  evaluation board: it provides the reference cycle counts and the
  reference bus trace that translated code is judged against.

The fourth point — compiled simulation / binary translation — is the
paper's contribution and lives in :mod:`repro.translator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.model import SourceArch, default_source_arch
from repro.bpred.static_pred import BranchStats, dynamic_cost
from repro.cache.icache import CacheStats, InstructionCache
from repro.errors import SimulationError
from repro.objfile.elf import ObjectFile
from repro.refsim.decoded import DecodedInstr, decode_instruction
from repro.refsim.irexec import execute_expansion
from repro.refsim.state import MachineState, SourceMemory
from repro.refsim.timing import PipelineTimer
from repro.soc.bus import BusAccess, SocBus
from repro.translator.ir import BranchKind


@dataclass
class RunResult:
    """Everything observable about one simulated execution."""

    instructions: int
    cycles: int
    regs: tuple[int, ...]
    data_image: bytes
    uart_output: bytes
    bus_trace: list[BusAccess]
    exit_code: int | None
    halted: bool
    branch_stats: BranchStats = field(default_factory=BranchStats)
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def cpi(self) -> float:
        """Average clock cycles per source instruction (Table 1 metric)."""
        return self.cycles / self.instructions if self.instructions else 0.0


class InterpretedISS:
    """Functional simulator that re-decodes on every step."""

    cache_decode = False

    def __init__(self, obj: ObjectFile, arch: SourceArch | None = None,
                 bus: SocBus | None = None) -> None:
        self.arch = arch or default_source_arch()
        self.memory = SourceMemory(self.arch.memory, bus)
        self.memory.load_object(obj)
        self.state = MachineState(pc=obj.entry)
        self.instructions = 0
        self._decode_cache: dict[int, DecodedInstr] = {}

    # -- decoding ---------------------------------------------------------

    def decode(self, addr: int) -> DecodedInstr:
        if self.cache_decode:
            cached = self._decode_cache.get(addr)
            if cached is not None:
                return cached
        decoded = decode_instruction(self.memory.fetch16, addr)
        if self.cache_decode:
            self._decode_cache[addr] = decoded
        return decoded

    # -- execution ---------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Functional simulators count one cycle per instruction."""
        return self.instructions

    def _pre_execute(self, decoded: DecodedInstr) -> None:
        """Hook for timing models (fetch/cache accounting)."""

    def _post_execute(self, decoded: DecodedInstr, taken: bool,
                      io_before: int) -> None:
        """Hook for timing models (branch/IO accounting)."""

    def step(self) -> DecodedInstr:
        """Execute one source instruction."""
        if self.state.halted:
            raise SimulationError("machine is halted")
        decoded = self.decode(self.state.pc)
        self._pre_execute(decoded)
        self.memory.cycle = self.cycles
        io_before = self.memory.io_accesses
        result = execute_expansion(
            list(decoded.expansion), self.state, self.memory,
            decoded.next_addr)
        self.instructions += 1
        self.state.pc = result.next_pc
        if result.halted:
            self.state.halted = True
        self._post_execute(decoded, result.branch_taken, io_before)
        return decoded

    def run(self, max_instructions: int = 50_000_000) -> RunResult:
        """Run until ``halt``, an exit-device write, or the limit."""
        exit_device = self.memory.exit_device
        while not self.state.halted and not exit_device.exited:
            self.step()
            if self.instructions >= max_instructions:
                raise SimulationError(
                    f"instruction limit {max_instructions} exceeded")
        return self.collect_result()

    def collect_result(self) -> RunResult:
        exit_device = self.memory.exit_device
        return RunResult(
            instructions=self.instructions,
            cycles=self.cycles,
            regs=tuple(self.state.regs),
            data_image=self.memory.data_image(),
            uart_output=self.memory.uart.output,
            bus_trace=self.memory.bus.monitor.transfers(),
            exit_code=exit_device.code if exit_device.exited else None,
            halted=self.state.halted,
            branch_stats=getattr(self, "branch_stats", BranchStats()),
            cache_stats=getattr(self, "icache", None).stats
            if getattr(self, "icache", None) else CacheStats(),
        )


class FunctionalISS(InterpretedISS):
    """Functional simulator with a decoded-instruction cache."""

    cache_decode = True


class CycleAccurateISS(FunctionalISS):
    """The reference: cached decode plus the full timing model."""

    def __init__(self, obj: ObjectFile, arch: SourceArch | None = None,
                 bus: SocBus | None = None) -> None:
        super().__init__(obj, arch, bus)
        self.timer = PipelineTimer(self.arch.pipeline)
        self.icache = (InstructionCache(self.arch.icache)
                       if self.arch.icache.enabled else None)
        self.branch_stats = BranchStats()

    @property
    def cycles(self) -> int:
        return self.timer.cycles

    def _pre_execute(self, decoded: DecodedInstr) -> None:
        if self.icache is not None:
            penalty = self.icache.access_penalty(decoded.addr)
            if penalty:
                self.timer.add_stall(penalty)
        self.timer.issue(decoded.timed)

    def _post_execute(self, decoded: DecodedInstr, taken: bool,
                      io_before: int) -> None:
        io_count = self.memory.io_accesses - io_before
        if io_count:
            self.timer.add_stall(
                io_count * self.arch.pipeline.io_access_cycles)
        kind = decoded.branch_kind
        if kind is not BranchKind.NONE:
            cost = dynamic_cost(self.arch.branch, kind, taken,
                                decoded.predicted_taken)
            # The branch already consumed its issue cycle in the timer.
            if cost > 1:
                self.timer.add_stall(cost - 1)
            elif taken:
                self.timer.barrier()
            if kind is BranchKind.COND:
                self.branch_stats.conditional += 1
                if taken:
                    self.branch_stats.taken += 1
                if taken != decoded.predicted_taken:
                    self.branch_stats.mispredicted += 1
