"""Shared pipeline-timing model of the source processor.

:class:`PipelineTimer` implements the dual-issue / hazard model exactly
once.  The cycle-accurate reference ISS steps it *dynamically* over the
whole execution; the translator's static cycle calculation
(Section 3.3 of the paper, "modeling the pipeline per basic block")
runs the same timer over one basic block from a clean state.  Any
difference between predicted and measured cycles therefore stems from
genuinely dynamic effects — pipeline overlap across block boundaries,
branch outcomes, cache state — which is precisely the structure the
paper's correction levels address.

Model summary (parameters from :class:`repro.arch.model.PipelineModel`):

* one instruction issues per cycle, in order;
* an ``ip``-class instruction may *dual-issue* with an immediately
  following ``ls``-class instruction when no register dependence links
  them (TriCore's IP/LS pipeline pair);
* load results are available ``1 + load_use_stall`` cycles after issue;
  multiply results after ``mul_result_latency`` cycles; consumers stall;
* taken branches and cache-miss stalls insert pipeline barriers that
  prevent pairing across them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import PipelineModel


@dataclass(frozen=True)
class TimedOp:
    """Timing-relevant view of one source instruction."""

    iclass: str  # 'ip' or 'ls'
    reads: tuple[int, ...]
    writes: tuple[int, ...]
    is_load: bool = False
    is_mul: bool = False


class PipelineTimer:
    """In-order dual-issue timing engine."""

    def __init__(self, model: PipelineModel) -> None:
        self.model = model
        self._next_cycle = 0  # default issue cycle of the next instruction
        self._ready: dict[int, int] = {}  # reg -> cycle the value is usable
        self._pair_host: tuple[int, tuple[int, ...]] | None = None
        # (issue cycle, writes) of an unpaired ip instruction that a
        # following ls instruction may join.

    @property
    def cycles(self) -> int:
        """Total cycles consumed so far."""
        return self._next_cycle

    def reset(self) -> None:
        self._next_cycle = 0
        self._ready.clear()
        self._pair_host = None

    def barrier(self) -> None:
        """Pipeline bubble (taken branch, fetch stall): no pairing across."""
        self._pair_host = None

    def add_stall(self, cycles: int) -> None:
        """Insert *cycles* of stall (e.g. an instruction-cache miss)."""
        if cycles > 0:
            self._next_cycle += cycles
            self.barrier()

    def issue(self, op: TimedOp) -> int:
        """Issue *op*; returns the cycle it issued in."""
        issue_cycle = self._next_cycle
        paired = False
        if (
            self.model.dual_issue
            and op.iclass == "ls"
            and self._pair_host is not None
        ):
            host_cycle, host_writes = self._pair_host
            touches = set(op.reads) | set(op.writes)
            if not touches.intersection(host_writes):
                issue_cycle = host_cycle
                paired = True

        # Register hazards can push the issue cycle later (and break a
        # pairing that would have violated them — checked above only for
        # the host's own writes; older in-flight results handled here).
        for reg in op.reads:
            ready = self._ready.get(reg)
            if ready is not None and ready > issue_cycle:
                issue_cycle = max(issue_cycle, ready)
                paired = False
        if not paired and issue_cycle < self._next_cycle:
            issue_cycle = self._next_cycle

        if op.is_load:
            latency = 1 + self.model.load_use_stall
        elif op.is_mul:
            latency = self.model.mul_result_latency
        else:
            latency = 1
        for reg in op.writes:
            self._ready[reg] = issue_cycle + latency

        if paired:
            # The pair slot is consumed; _next_cycle already points past
            # the host's cycle.
            self._pair_host = None
            self._next_cycle = max(self._next_cycle, issue_cycle + 1)
        else:
            self._next_cycle = issue_cycle + 1
            self._pair_host = (
                (issue_cycle, op.writes) if op.iclass == "ip" else None
            )
        return issue_cycle
