"""Minimal VCD (value change dump) writer for the RTL-style simulator.

Lets the stage-level model dump its per-cycle signals in the standard
waveform format, as an RTL simulation environment would.
"""

from __future__ import annotations

import io
from dataclasses import dataclass


@dataclass
class VcdSignal:
    name: str
    width: int
    ident: str
    last: int | None = None


class VcdWriter:
    """Streams value changes for a fixed set of signals."""

    def __init__(self, module: str = "rtlsim",
                 timescale: str = "1 ns") -> None:
        self._module = module
        self._timescale = timescale
        self._signals: dict[str, VcdSignal] = {}
        self._body = io.StringIO()
        self._time = -1
        self._header_done = False

    def add_signal(self, name: str, width: int = 32) -> None:
        if self._header_done:
            raise RuntimeError("signals must be added before recording")
        ident = chr(33 + len(self._signals))
        self._signals[name] = VcdSignal(name=name, width=width, ident=ident)

    def record(self, time: int, **values: int) -> None:
        """Record signal values at *time* (only changes are written)."""
        self._header_done = True
        changes = []
        for name, value in values.items():
            signal = self._signals[name]
            if signal.last == value:
                continue
            signal.last = value
            if signal.width == 1:
                changes.append(f"{value & 1}{signal.ident}")
            else:
                changes.append(f"b{value:b} {signal.ident}")
        if not changes:
            return
        if time != self._time:
            self._body.write(f"#{time}\n")
            self._time = time
        for change in changes:
            self._body.write(change + "\n")

    def render(self) -> str:
        """The complete VCD document."""
        out = io.StringIO()
        out.write(f"$timescale {self._timescale} $end\n")
        out.write(f"$scope module {self._module} $end\n")
        for signal in self._signals.values():
            out.write(f"$var wire {signal.width} {signal.ident} "
                      f"{signal.name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        out.write(self._body.getvalue())
        return out.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
