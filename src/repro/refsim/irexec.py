"""Interpreter for the translator's intermediate code.

The reference simulators execute each decoded source instruction by
interpreting its IR expansion — the same expansion the binary
translator compiles.  Keeping a single semantic definition makes the
functional equivalence between reference and translation a structural
property rather than a hope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.refsim.state import MachineState, SourceMemory
from repro.translator.ir import IRInstr, IROp, is_source_reg
from repro.utils.bits import s32, u32

_SIZE = {
    IROp.LDW: 4, IROp.LDH: 2, IROp.LDHU: 2, IROp.LDB: 1, IROp.LDBU: 1,
    IROp.STW: 4, IROp.STH: 2, IROp.STB: 1,
}
_SIGNED_LOADS = {IROp.LDH: 16, IROp.LDB: 8}


@dataclass
class ExecResult:
    """Outcome of executing one source instruction's expansion."""

    next_pc: int
    branch_taken: bool = False
    halted: bool = False
    loads: int = 0
    stores: int = 0


def execute_expansion(instrs: list[IRInstr], state: MachineState,
                      memory: SourceMemory, fallthrough_pc: int) -> ExecResult:
    """Execute the IR ops of one source instruction.

    Temporaries live only within the expansion.  A taken ``B`` ends the
    expansion (it is always the final op of an expansion).
    """
    temps: dict[int, int] = {}
    result = ExecResult(next_pc=fallthrough_pc)

    def get(reg: int) -> int:
        if is_source_reg(reg):
            return state.regs[reg]
        try:
            return temps[reg]
        except KeyError:
            raise SimulationError(
                f"IR read of uninitialized temp t{reg}") from None

    def put(reg: int, value: int) -> None:
        value = u32(value)
        if is_source_reg(reg):
            state.regs[reg] = value
        else:
            temps[reg] = value

    for instr in instrs:
        if instr.pred is not None:
            taken = bool(get(instr.pred)) == instr.pred_sense
            if not taken:
                continue
        op = instr.op
        if op is IROp.B:
            target = get(instr.a) if instr.a is not None else instr.imm
            if target is None:
                raise SimulationError("branch without target")
            result.next_pc = u32(target)
            result.branch_taken = True
            break
        if op is IROp.HALT:
            result.halted = True
            break
        if op is IROp.NOP:
            continue
        if op in _SIZE:
            size = _SIZE[op]
            if op in (IROp.STW, IROp.STH, IROp.STB):
                addr = u32(get(instr.b) + (instr.imm or 0))
                memory.write(addr, get(instr.a), size)
                result.stores += 1
                continue
            addr = u32(get(instr.a) + (instr.imm or 0))
            value = memory.read(addr, size)
            bits = _SIGNED_LOADS.get(op)
            if bits is not None:
                sign = 1 << (bits - 1)
                if value & sign:
                    value -= 1 << bits
            put(instr.dst, value)
            result.loads += 1
            continue
        put(instr.dst, _alu(instr, get))
    return result


def _alu(instr: IRInstr, get) -> int:
    """Evaluate a non-memory, non-control IR operation."""
    op = instr.op
    if op is IROp.MVK:
        return instr.imm or 0
    a = get(instr.a)
    if op is IROp.MV:
        return a
    if op is IROp.ABS:
        return abs(s32(a))
    b = get(instr.b) if instr.b is not None else (instr.imm or 0)
    if op is IROp.ADD:
        return a + b
    if op is IROp.SUB:
        return a - b
    if op is IROp.MPY:
        return s32(a) * s32(b)
    if op is IROp.AND:
        return a & u32(b)
    if op is IROp.OR:
        return a | u32(b)
    if op is IROp.XOR:
        return a ^ u32(b)
    if op is IROp.ANDN:
        return a & ~u32(b)
    if op is IROp.SHL:
        return a << (b & 31)
    if op is IROp.SHRU:
        return u32(a) >> (b & 31)
    if op is IROp.SHRA:
        return s32(a) >> (b & 31)
    if op is IROp.MIN:
        return min(s32(a), s32(b))
    if op is IROp.MAX:
        return max(s32(a), s32(b))
    if op is IROp.CMPEQ:
        return 1 if u32(a) == u32(b) else 0
    if op is IROp.CMPNE:
        return 1 if u32(a) != u32(b) else 0
    if op is IROp.CMPLT:
        return 1 if s32(a) < s32(b) else 0
    if op is IROp.CMPLTU:
        return 1 if u32(a) < u32(b) else 0
    if op is IROp.CMPGE:
        return 1 if s32(a) >= s32(b) else 0
    if op is IROp.CMPGEU:
        return 1 if u32(a) >= u32(b) else 0
    raise SimulationError(f"unhandled IR op {op}")
