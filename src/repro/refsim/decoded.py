"""Decoded-instruction record shared by the reference simulators.

Bundles everything the simulators need per source instruction: the
spec, the IR expansion (semantics), the timing view, and static branch
metadata.  The translator's decoder produces the same expansion, so
this module is also the natural place for the expansion helper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpred.static_pred import predicted_taken
from repro.isa.tricore.encoding import decode_at
from repro.isa.tricore.instructions import ExpandCtx, InstructionSpec
from repro.refsim.timing import TimedOp
from repro.translator.ir import BranchKind, IRInstr, IROp, is_source_reg


@dataclass(frozen=True)
class DecodedInstr:
    """One decoded, expanded source instruction."""

    addr: int
    width: int
    spec: InstructionSpec
    fields: dict[str, int]
    expansion: tuple[IRInstr, ...]
    timed: TimedOp
    branch_kind: BranchKind
    branch_target: int | None  # static target of direct branches
    predicted_taken: bool

    @property
    def next_addr(self) -> int:
        return self.addr + self.width

    @property
    def is_io_candidate(self) -> bool:
        return self.spec.is_load or self.spec.is_store


def expand_instruction(spec: InstructionSpec, fields: dict[str, int],
                       addr: int, width: int) -> list[IRInstr]:
    """Produce the IR expansion of one source instruction."""
    ctx = ExpandCtx(pc=addr, next_pc=addr + width)
    instrs = spec.expand(fields, ctx)
    for instr in instrs:
        instr.src_addr = addr
    return instrs


def timing_view(spec: InstructionSpec,
                expansion: list[IRInstr]) -> TimedOp:
    """Architectural reads/writes of the whole expansion (temps ignored)."""
    reads: list[int] = []
    writes: set[int] = set()
    for instr in expansion:
        for reg in instr.reads():
            # A read of a register this expansion already produced is an
            # internal forwarding path, not an architectural hazard.
            if is_source_reg(reg) and reg not in writes and reg not in reads:
                reads.append(reg)
        for reg in instr.writes():
            if is_source_reg(reg):
                writes.add(reg)
    return TimedOp(
        iclass=spec.iclass,
        reads=tuple(reads),
        writes=tuple(sorted(writes)),
        is_load=spec.is_load,
        is_mul=spec.is_mul,
    )


def decode_instruction(fetch16, addr: int) -> DecodedInstr:
    """Decode + expand + classify the instruction at *addr*."""
    spec, fields, width = decode_at(fetch16, addr)
    expansion = expand_instruction(spec, fields, addr, width)
    timed = timing_view(spec, expansion)
    target: int | None = None
    for instr in expansion:
        if instr.op is IROp.B and instr.imm is not None:
            target = instr.imm
    kind = spec.branch
    return DecodedInstr(
        addr=addr,
        width=width,
        spec=spec,
        fields=fields,
        expansion=tuple(expansion),
        timed=timed,
        branch_kind=kind,
        branch_target=target,
        predicted_taken=predicted_taken(kind, target, addr),
    )
