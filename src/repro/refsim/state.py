"""Machine state and memory system of the source processor."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.model import MemoryMap
from repro.errors import BusError, SimulationError
from repro.objfile.elf import ObjectFile
from repro.soc.bus import SocBus, standard_bus
from repro.soc.devices import CycleTimer, ExitDevice, Uart
from repro.utils.bits import u32


class SourceMemory:
    """Memory system: code ROM, data RAM, and the I/O window on the bus.

    The I/O window forwards to a :class:`~repro.soc.bus.SocBus` whose
    addresses are *offsets within the window*; the platform's bus bridge
    uses the identical convention, so traces line up.
    """

    def __init__(self, memory_map: MemoryMap | None = None,
                 bus: SocBus | None = None) -> None:
        self.map = memory_map or MemoryMap()
        self.bus = bus if bus is not None else standard_bus()
        self._code = bytearray(self.map.code_size)
        self._data = bytearray(self.map.data_size)
        #: emulated cycle stamp used for bus transactions; the owner
        #: (ISS or platform) keeps this current.
        self.cycle = 0
        self.io_accesses = 0

    # -- image loading --------------------------------------------------

    def load_object(self, obj: ObjectFile) -> None:
        """Load all sections of a linked object file."""
        for section in obj.sections:
            self.load_blob(section.addr, section.data)

    def load_blob(self, addr: int, blob: bytes) -> None:
        if self.map.is_code(addr):
            off = addr - self.map.code_base
            if off + len(blob) > len(self._code):
                raise SimulationError("code image exceeds code region")
            self._code[off:off + len(blob)] = blob
        elif self.map.is_data(addr):
            off = addr - self.map.data_base
            if off + len(blob) > len(self._data):
                raise SimulationError("data image exceeds data region")
            self._data[off:off + len(blob)] = blob
        else:
            raise SimulationError(
                f"cannot load image at unmapped address {addr:#010x}")

    # -- accessors -------------------------------------------------------

    def fetch16(self, addr: int) -> int:
        """Instruction fetch of one halfword (code region only)."""
        if not self.map.is_code(addr):
            raise BusError("instruction fetch outside code region", addr)
        off = addr - self.map.code_base
        return int.from_bytes(self._code[off:off + 2], "little")

    def read(self, addr: int, size: int) -> int:
        if self.map.is_data(addr):
            off = addr - self.map.data_base
            return int.from_bytes(self._data[off:off + size], "little")
        if self.map.is_code(addr):
            off = addr - self.map.code_base
            return int.from_bytes(self._code[off:off + size], "little")
        if self.map.is_io(addr):
            self.io_accesses += 1
            return self.bus.read(addr - self.map.io_base, size, self.cycle)
        raise BusError("read from unmapped address", addr)

    def write(self, addr: int, value: int, size: int) -> None:
        if self.map.is_data(addr):
            off = addr - self.map.data_base
            self._data[off:off + size] = u32(value).to_bytes(4, "little")[:size]
            return
        if self.map.is_io(addr):
            self.io_accesses += 1
            self.bus.write(addr - self.map.io_base, value, size, self.cycle)
            return
        if self.map.is_code(addr):
            raise BusError("write to code region", addr)
        raise BusError("write to unmapped address", addr)

    def is_io(self, addr: int) -> bool:
        return self.map.is_io(addr)

    # -- convenience peripheral access ------------------------------------

    @property
    def uart(self) -> Uart:
        return self.bus.device("uart")  # type: ignore[return-value]

    @property
    def timer(self) -> CycleTimer:
        return self.bus.device("timer")  # type: ignore[return-value]

    @property
    def exit_device(self) -> ExitDevice:
        return self.bus.device("exit")  # type: ignore[return-value]

    def data_image(self) -> bytes:
        """Snapshot of the data RAM (for equivalence tests)."""
        return bytes(self._data)


@dataclass
class MachineState:
    """Architectural register state of the source processor."""

    regs: list[int] = field(default_factory=lambda: [0] * 32)
    pc: int = 0
    halted: bool = False

    def read_reg(self, reg: int) -> int:
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        self.regs[reg] = u32(value)

    def snapshot(self) -> tuple[tuple[int, ...], int, bool]:
        return tuple(self.regs), self.pc, self.halted
