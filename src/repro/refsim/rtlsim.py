"""Stage-level ("RT level") simulator of the source processor.

The stand-in for Table 2's "simulation of the TriCore processor core on
a workstation": the machine is advanced **one clock cycle per loop
iteration**, with explicit micro-architectural state — fetch stage,
issue stage with a dual-issue window, a register scoreboard, stall
causes as named signals — instead of the reference ISS's instruction-
at-a-time accounting.  It is deliberately the slow-but-detailed model:
the experiment harness measures its wall-clock runtime.

Timing is cycle-identical to :class:`repro.refsim.iss.CycleAccurateISS`
(asserted by tests): both implement the same architecture description,
one per-cycle, one per-instruction.

Micro-architecture per cycle:

1. **WB** — scoreboard entries whose ready time arrives retire.
2. **STALL** — an active stall (icache refill, branch redirect, I/O
   wait, hazard wait) burns the cycle.
3. **ISSUE** — the instruction at the issue stage executes; a following
   LS-class instruction may dual-issue with an IP-class leader when no
   dependence links them.  Branch outcomes schedule redirect bubbles;
   memory instructions touching the I/O window schedule bus-wait
   stalls; the next fetch checks the instruction cache and schedules a
   refill stall on a miss.

A :class:`~repro.refsim.vcd.VcdWriter` can be attached to dump the
per-cycle signals as a waveform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import SourceArch, default_source_arch
from repro.bpred.static_pred import BranchStats, dynamic_cost
from repro.cache.icache import InstructionCache
from repro.errors import SimulationError
from repro.objfile.elf import ObjectFile
from repro.refsim.decoded import DecodedInstr, decode_instruction
from repro.refsim.irexec import execute_expansion
from repro.refsim.iss import RunResult
from repro.refsim.state import MachineState, SourceMemory
from repro.refsim.vcd import VcdWriter
from repro.soc.bus import SocBus
from repro.translator.ir import BranchKind


@dataclass
class _Stall:
    """An active multi-cycle stall with its cause signal."""

    cause: str
    remaining: int


class RtlSimulator:
    """Cycle-stepped stage-level model of the source core."""

    def __init__(self, obj: ObjectFile, arch: SourceArch | None = None,
                 bus: SocBus | None = None,
                 vcd: VcdWriter | None = None) -> None:
        self.arch = arch or default_source_arch()
        self.memory = SourceMemory(self.arch.memory, bus)
        self.memory.load_object(obj)
        self.state = MachineState(pc=obj.entry)
        self.icache = (InstructionCache(self.arch.icache)
                       if self.arch.icache.enabled else None)
        self.branch_stats = BranchStats()
        self.cycle = 0
        self.instructions = 0
        self._decode_cache: dict[int, DecodedInstr] = {}
        # scoreboard: register -> cycle at which its value is usable
        self._scoreboard: dict[int, int] = {}
        self._stall: _Stall | None = None
        # dual-issue: an unpaired IP instruction issued this cycle
        self._pair_host: tuple[int, tuple[int, ...]] | None = None
        self._fetch_checked: set[int] | None = None
        self.vcd = vcd
        if vcd is not None:
            for name, width in (("pc", 32), ("issue_valid", 1),
                                ("dual_issue", 1), ("stall", 1),
                                ("stall_icache", 1), ("stall_branch", 1),
                                ("stall_io", 1), ("stall_hazard", 1)):
                vcd.add_signal(name, width)

    # ------------------------------------------------------------------

    def _decode(self, addr: int) -> DecodedInstr:
        cached = self._decode_cache.get(addr)
        if cached is None:
            cached = decode_instruction(self.memory.fetch16, addr)
            self._decode_cache[addr] = cached
        return cached

    def _record(self, issued: bool, dual: bool) -> None:
        if self.vcd is None:
            return
        cause = self._stall.cause if self._stall else ""
        self.vcd.record(
            self.cycle,
            pc=self.state.pc,
            issue_valid=int(issued),
            dual_issue=int(dual),
            stall=int(cause != ""),
            stall_icache=int(cause == "icache"),
            stall_branch=int(cause == "branch"),
            stall_io=int(cause == "io"),
            stall_hazard=int(cause == "hazard"),
        )

    # ------------------------------------------------------------------

    def clock(self) -> None:
        """Advance the machine by exactly one clock cycle."""
        if self.state.halted:
            raise SimulationError("machine is halted")

        # Active stall burns this cycle.
        if self._stall is not None:
            self._record(issued=False, dual=False)
            self._stall.remaining -= 1
            if self._stall.remaining <= 0:
                self._stall = None
            self.cycle += 1
            return

        decoded = self._decode(self.state.pc)

        # Instruction fetch: a new cache line stalls on a miss.
        if self.icache is not None:
            penalty = self.icache.access_penalty(decoded.addr)
            if penalty:
                self._stall = _Stall("icache", penalty)
                self._pair_host = None
                self._record(issued=False, dual=False)
                self._stall.remaining -= 1
                if self._stall.remaining <= 0:
                    self._stall = None
                self.cycle += 1
                return

        # Register hazards: operands not yet ready.
        ready_at = 0
        for reg in decoded.timed.reads:
            ready_at = max(ready_at, self._scoreboard.get(reg, 0))
        can_pair = False
        if (self.arch.pipeline.dual_issue and self._pair_host is not None
                and decoded.timed.iclass == "ls"):
            host_cycle, host_writes = self._pair_host
            touches = set(decoded.timed.reads) | set(decoded.timed.writes)
            # The host issued on the previous clock edge; the LS op may
            # join it retroactively (same hardware cycle) when nothing
            # links them and its operands were ready by then.
            if host_cycle == self.cycle - 1 and \
                    not touches.intersection(host_writes) \
                    and ready_at <= host_cycle:
                can_pair = True
        if ready_at > self.cycle and not can_pair:
            self._stall = _Stall("hazard", ready_at - self.cycle)
            # hazard wait does not break pairing state by itself, but
            # the cycle gap does:
            self._pair_host = None
            self._record(issued=False, dual=False)
            self._stall.remaining -= 1
            if self._stall.remaining <= 0:
                self._stall = None
            self.cycle += 1
            return

        # Issue + execute.
        self._issue(decoded, paired=can_pair)
        if can_pair:
            # The pair issued within the host's cycle; the clock edge was
            # already counted by the host.
            self._pair_host = None
            return
        self._record(issued=True, dual=False)
        self.cycle += 1

    def _issue(self, decoded: DecodedInstr, paired: bool) -> None:
        issue_cycle = self._pair_host[0] if paired else self.cycle
        self.memory.cycle = self.cycle
        io_before = self.memory.io_accesses
        result = execute_expansion(list(decoded.expansion), self.state,
                                   self.memory, decoded.next_addr)
        self.instructions += 1
        self.state.pc = result.next_pc
        if result.halted:
            self.state.halted = True

        # Scoreboard update.
        if decoded.timed.is_load:
            latency = 1 + self.arch.pipeline.load_use_stall
        elif decoded.timed.is_mul:
            latency = self.arch.pipeline.mul_result_latency
        else:
            latency = 1
        for reg in decoded.timed.writes:
            self._scoreboard[reg] = issue_cycle + latency

        if not paired:
            self._pair_host = ((self.cycle, decoded.timed.writes)
                               if decoded.timed.iclass == "ip" else None)

        # Post-issue stall scheduling: I/O waits, branch redirects.
        io_count = self.memory.io_accesses - io_before
        pending = 0
        cause = ""
        if io_count:
            pending += io_count * self.arch.pipeline.io_access_cycles
            cause = "io"
        kind = decoded.branch_kind
        if kind is not BranchKind.NONE:
            cost = dynamic_cost(self.arch.branch, kind, result.branch_taken,
                                decoded.predicted_taken)
            if cost > 1:
                pending += cost - 1
                cause = "branch"
            if result.branch_taken or cost > 1:
                self._pair_host = None
            if kind is BranchKind.COND:
                self.branch_stats.conditional += 1
                if result.branch_taken:
                    self.branch_stats.taken += 1
                if result.branch_taken != decoded.predicted_taken:
                    self.branch_stats.mispredicted += 1
        if pending:
            self._stall = _Stall(cause, pending)
            self._pair_host = None

    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 100_000_000) -> RunResult:
        exit_device = self.memory.exit_device
        while not self.state.halted and not exit_device.exited:
            self.clock()
            if self.cycle >= max_cycles:
                raise SimulationError(f"cycle limit {max_cycles} exceeded")
        # Drain the stall scheduled by the final instruction (e.g. the
        # bus wait of the exit-device write) so cycle totals match the
        # per-instruction accounting of the reference ISS.
        if self._stall is not None:
            self.cycle += self._stall.remaining
            self._stall = None
        from repro.cache.icache import CacheStats

        return RunResult(
            instructions=self.instructions,
            cycles=self.cycle,
            regs=tuple(self.state.regs),
            data_image=self.memory.data_image(),
            uart_output=self.memory.uart.output,
            bus_trace=self.memory.bus.monitor.transfers(),
            exit_code=exit_device.code if exit_device.exited else None,
            halted=self.state.halted,
            branch_stats=self.branch_stats,
            cache_stats=self.icache.stats if self.icache else CacheStats(),
        )
