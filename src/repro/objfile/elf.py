"""ELF-lite object-file format.

The paper's translator "reads the object file, which is usually provided
in ELF format".  This module implements a compact 32-bit ELF-like
container — magic, section table, symbol table — sufficient for fully
linked executables of the TriCore-like ISA.  Sections carry absolute
load addresses (the assembler resolves all references), so no relocation
records are required.

Binary layout (all little-endian):

* header: magic ``\\x7fRELF``, version u16, flags u16, entry u32,
  section count u32, symbol count u32
* per section: name (u16 length + bytes), addr u32, flags u32,
  data length u32, data bytes
* per symbol: name (u16 length + bytes), addr u32, kind u8, size u32
"""

from __future__ import annotations

import enum
import io
import struct
from dataclasses import dataclass, field

from repro.errors import ObjectFileError

MAGIC = b"\x7fRELF"
VERSION = 1

SEC_EXEC = 0x1
SEC_WRITE = 0x2


class SymbolKind(enum.IntEnum):
    """Classification of a symbol-table entry."""

    NONE = 0
    FUNC = 1
    OBJECT = 2


@dataclass
class Section:
    """A named, absolutely-addressed section with initial contents."""

    name: str
    addr: int
    data: bytes
    flags: int = 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def is_exec(self) -> bool:
        return bool(self.flags & SEC_EXEC)

    def contains(self, address: int) -> bool:
        return self.addr <= address < self.end


@dataclass
class Symbol:
    """A named address, optionally typed and sized."""

    name: str
    addr: int
    kind: SymbolKind = SymbolKind.NONE
    size: int = 0


@dataclass
class ObjectFile:
    """A fully linked executable image for the source processor."""

    entry: int = 0
    sections: list[Section] = field(default_factory=list)
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def section(self, name: str) -> Section:
        """Return the section named *name*, raising if absent."""
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise ObjectFileError(f"no section named {name!r}")

    def has_section(self, name: str) -> bool:
        return any(sec.name == name for sec in self.sections)

    def text(self) -> Section:
        """The (first) executable section."""
        for sec in self.sections:
            if sec.is_exec():
                return sec
        raise ObjectFileError("object file has no executable section")

    def add_symbol(self, symbol: Symbol) -> None:
        self.symbols[symbol.name] = symbol

    def symbol_addr(self, name: str) -> int:
        try:
            return self.symbols[name].addr
        except KeyError:
            raise ObjectFileError(f"undefined symbol {name!r}") from None

    def symbol_at(self, addr: int, kind: SymbolKind | None = None) -> Symbol | None:
        """Return a symbol exactly at *addr* (optionally of *kind*)."""
        for sym in self.symbols.values():
            if sym.addr == addr and (kind is None or sym.kind == kind):
                return sym
        return None

    def validate(self) -> "ObjectFile":
        """Check section sanity (alignment, overlap)."""
        ordered = sorted(self.sections, key=lambda s: s.addr)
        for sec in ordered:
            if sec.addr & 1:
                raise ObjectFileError(f"section {sec.name!r} is not aligned")
        for lo, hi in zip(ordered, ordered[1:]):
            if lo.end > hi.addr:
                raise ObjectFileError(
                    f"sections {lo.name!r} and {hi.name!r} overlap"
                )
        return self


def _write_name(out: io.BytesIO, name: str) -> None:
    encoded = name.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise ObjectFileError(f"name too long: {name[:20]!r}...")
    out.write(struct.pack("<H", len(encoded)))
    out.write(encoded)


def _read_exact(stream: io.BytesIO, count: int, what: str) -> bytes:
    blob = stream.read(count)
    if len(blob) != count:
        raise ObjectFileError(f"truncated object file while reading {what}")
    return blob


def _read_name(stream: io.BytesIO, what: str) -> str:
    (length,) = struct.unpack("<H", _read_exact(stream, 2, what))
    return _read_exact(stream, length, what).decode("utf-8")


def dump_bytes(obj: ObjectFile) -> bytes:
    """Serialize *obj* to its binary form."""
    obj.validate()
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(
        struct.pack(
            "<HHIII", VERSION, 0, obj.entry, len(obj.sections), len(obj.symbols)
        )
    )
    for sec in obj.sections:
        _write_name(out, sec.name)
        out.write(struct.pack("<III", sec.addr, sec.flags, len(sec.data)))
        out.write(sec.data)
    for sym in obj.symbols.values():
        _write_name(out, sym.name)
        out.write(struct.pack("<IBI", sym.addr, int(sym.kind), sym.size))
    return out.getvalue()


def load_bytes(blob: bytes) -> ObjectFile:
    """Parse the binary form produced by :func:`dump_bytes`."""
    stream = io.BytesIO(blob)
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise ObjectFileError(f"bad magic {magic!r}; not a RELF object file")
    version, _flags, entry, n_sections, n_symbols = struct.unpack(
        "<HHIII", _read_exact(stream, 16, "header")
    )
    if version != VERSION:
        raise ObjectFileError(f"unsupported object file version {version}")
    obj = ObjectFile(entry=entry)
    for _ in range(n_sections):
        name = _read_name(stream, "section name")
        addr, flags, size = struct.unpack(
            "<III", _read_exact(stream, 12, "section header")
        )
        data = _read_exact(stream, size, f"section {name!r} data")
        obj.sections.append(Section(name=name, addr=addr, data=data, flags=flags))
    for _ in range(n_symbols):
        name = _read_name(stream, "symbol name")
        addr, kind, size = struct.unpack(
            "<IBI", _read_exact(stream, 9, "symbol entry")
        )
        try:
            sym_kind = SymbolKind(kind)
        except ValueError:
            raise ObjectFileError(f"invalid symbol kind {kind}") from None
        obj.add_symbol(Symbol(name=name, addr=addr, kind=sym_kind, size=size))
    if stream.read(1):
        raise ObjectFileError("trailing bytes after object file contents")
    return obj.validate()


def save(obj: ObjectFile, path: str) -> None:
    """Write *obj* to *path*."""
    with open(path, "wb") as handle:
        handle.write(dump_bytes(obj))


def load(path: str) -> ObjectFile:
    """Read an object file from *path*."""
    with open(path, "rb") as handle:
        return load_bytes(handle.read())
