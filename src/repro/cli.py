"""Command-line entry points.

* ``repro-asm`` — assemble TriCore-like assembly to an object file
* ``repro-minic`` — compile minic C to an object file (or assembly)
* ``repro-translate`` — run the cycle-accurate binary translator
* ``repro-run`` — execute an object file (reference ISS or platform)
* ``repro-fuzz`` — differential fuzzing across backends/cores/levels
* ``repro-experiments`` — regenerate the paper's tables and figures
* ``repro-serve`` — resident simulation service (warm caches, HTTP/JSON)
* ``repro-submit`` — submit a sweep to a running repro-serve
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def _load_object(path: str):
    from repro.objfile import elf

    return elf.load(path)


def _backend_choices() -> tuple[str, ...]:
    """Registered execution backends (single source of truth), so CLI
    choices stay in sync with :mod:`repro.vliw.codegen` automatically —
    a backend registered there is immediately selectable here, and an
    unknown name is rejected naming the registered set."""
    from repro.vliw.codegen import backend_names

    return backend_names()


def asm_main(argv: list[str] | None = None) -> int:
    """Assemble a source file into a RELF object file."""
    parser = argparse.ArgumentParser(
        prog="repro-asm", description=asm_main.__doc__)
    parser.add_argument("source")
    parser.add_argument("-o", "--output", default="a.relf")
    parser.add_argument("--listing", action="store_true",
                        help="print a disassembly listing")
    args = parser.parse_args(argv)
    from repro.isa.tricore.assembler import assemble
    from repro.isa.tricore.disassembler import format_listing
    from repro.objfile import elf

    try:
        with open(args.source) as handle:
            obj = assemble(handle.read())
        elf.save(obj, args.output)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.listing:
        text = obj.text()
        print(format_listing(text.data, text.addr))
    print(f"wrote {args.output} (entry {obj.entry:#010x})")
    return 0


def minic_main(argv: list[str] | None = None) -> int:
    """Compile a minic C source file."""
    parser = argparse.ArgumentParser(
        prog="repro-minic", description=minic_main.__doc__)
    parser.add_argument("source")
    parser.add_argument("-o", "--output", default="a.relf")
    parser.add_argument("-S", "--asm", action="store_true",
                        help="emit assembly text instead of an object file")
    args = parser.parse_args(argv)
    from repro.minic.compiler import compile_source, compile_to_asm
    from repro.objfile import elf

    try:
        with open(args.source) as handle:
            source = handle.read()
        if args.asm:
            print(compile_to_asm(source))
            return 0
        obj = compile_source(source)
        elf.save(obj, args.output)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.output} (entry {obj.entry:#010x})")
    return 0


def translate_main(argv: list[str] | None = None) -> int:
    """Translate an object file to a cycle-annotated VLIW program."""
    parser = argparse.ArgumentParser(
        prog="repro-translate", description=translate_main.__doc__)
    parser.add_argument("object")
    parser.add_argument("--level", type=int, default=2,
                        choices=(0, 1, 2, 3),
                        help="detail level of cycle accuracy")
    parser.add_argument("--arch", help="source architecture XML file")
    parser.add_argument("--listing", action="store_true",
                        help="print the translated program")
    parser.add_argument("--run", action="store_true",
                        help="execute on the platform after translating")
    parser.add_argument("--backend", default="interp",
                        choices=_backend_choices(),
                        help="platform execution backend for --run: the "
                             "interpretive core, the packet-compiled "
                             "host translation, or the native C backend "
                             "(identical observables)")
    parser.add_argument("--cores", type=int, default=1,
                        help="for --run: replicate the program onto an "
                             "N-core SoC model (one shared bus, "
                             "round-robin arbitration) instead of the "
                             "single-core platform")
    parser.add_argument("--shared", action="store_true",
                        help="for --run --cores N: report the "
                             "shared-device segment (mailbox/scratch/"
                             "global timer) activity — per-core "
                             "contention stalls, arbitration conflicts "
                             "and shared-bus transfers")
    parser.add_argument("--quantum", default="adaptive",
                        help="for --run --cores N: intra-SoC lockstep "
                             "scheduling mode — 'adaptive' (default: "
                             "run-ahead windows between shared "
                             "accesses) or a fixed integer quantum; "
                             "observables are identical either way")
    parser.add_argument("--jobs", type=int, default=1,
                        help="for --run: sweep all four detail levels, "
                             "sharded across N worker processes "
                             "(overrides --level)")
    parser.add_argument("--nodes", type=int, default=1,
                        help="for --run: join N copies of the "
                             "(--cores-core) SoC into a cluster over a "
                             "modeled network fabric")
    parser.add_argument("--barrier", default="lockstep",
                        choices=("lockstep", "process"),
                        help="for --nodes: the cluster synchronization "
                             "barrier — serial in-process lockstep, or "
                             "one worker process per SoC (identical "
                             "observables)")
    parser.add_argument("--fabric-latency", type=int, default=16,
                        help="fabric per-hop latency in target cycles "
                             "(also the default lockstep quantum)")
    parser.add_argument("--fabric-word-cycles", type=int, default=2,
                        help="fabric link serialization cost per word")
    parser.add_argument("--fabric-topology", default="xbar",
                        choices=("xbar", "ring"),
                        help="fabric topology for --nodes")
    args = parser.parse_args(argv)
    from repro.arch.xmlio import source_arch_from_xml
    from repro.translator.driver import translate
    from repro.vliw.platform import PrototypingPlatform

    if args.cores < 1 or args.jobs < 1 or args.nodes < 1:
        print("error: --cores, --jobs and --nodes must be >= 1",
              file=sys.stderr)
        return 1
    if args.quantum != "adaptive":
        try:
            args.quantum = int(args.quantum)
        except ValueError:
            args.quantum = 0
        if args.quantum < 1:
            print("error: --quantum must be 'adaptive' or a positive "
                  "integer", file=sys.stderr)
            return 1
    if args.shared and (not args.run or args.cores < 2 or args.jobs > 1
                        or args.nodes > 1):
        print("error: --shared requires --run --cores >= 2 and is not "
              "available with --jobs or --nodes", file=sys.stderr)
        return 1
    if args.nodes > 1 and args.jobs > 1:
        print("error: --nodes and --jobs are mutually exclusive",
              file=sys.stderr)
        return 1
    try:
        obj = _load_object(args.object)
        arch = None
        if args.arch:
            with open(args.arch) as handle:
                arch = source_arch_from_xml(handle.read())
        result = translate(obj, level=args.level, source=arch)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stats = result.stats
    print(f"translated {stats.source_instructions} source instructions "
          f"({stats.basic_blocks} blocks) into {stats.packets} packets "
          f"at level {args.level}")
    print(f"code expansion {stats.code_expansion:.2f}x; accesses: "
          f"{stats.accesses_data} data, {stats.accesses_io} io, "
          f"{stats.accesses_unknown} unknown; "
          f"{stats.spilled_registers} spilled registers")
    if args.listing:
        print(result.program.listing())
    if not args.run:
        return 0
    if args.jobs > 1:
        return _run_level_sweep(obj, arch, args)
    if args.nodes > 1:
        return _run_cluster(result.program, arch, args)
    if args.cores > 1:
        from repro.vliw.multicore import MultiCoreSoC

        multi = MultiCoreSoC(result.program, cores=args.cores,
                             backends=args.backend, source_arch=arch,
                             quantum=args.quantum).run()
        for index, run in enumerate(multi.per_core):
            print(f"core{index}: exit={run.exit_code} "
                  f"target_cycles={run.target_cycles} "
                  f"emulated_cycles={run.emulated_cycles} "
                  f"cpi={run.target_cpi:.2f}")
            if args.shared:
                print(f"core{index} contention_stall_cycles="
                      f"{run.core_stats.contention_stall_cycles}")
            if run.uart_output:
                print(f"core{index} uart: {run.uart_output!r}")
        print(f"platform: {multi.n_cores} cores, "
              f"{multi.target_cycles} target cycles, "
              f"{len(multi.bus_trace)} shared-bus transfers")
        if args.shared:
            shared_trace = multi.shared_trace()
            print(f"shared segment: {len(shared_trace)} transfers, "
                  f"{multi.contention_conflicts} arbitration conflicts, "
                  f"{sum(multi.contention_stall_cycles)} total stall "
                  f"cycles")
            lockstep = multi.lockstep
            print(f"lockstep: quantum={lockstep['quantum']} "
                  f"rounds={lockstep['rounds']} "
                  f"runahead_rounds={lockstep['runahead_rounds']} "
                  f"runahead_cycles={lockstep['runahead_window_cycles']} "
                  f"inline_shared_calls="
                  f"{sum(c['inline_shared_calls'] for c in lockstep['per_core'])} "
                  f"interp_bails="
                  f"{sum(c['interp_bails'] for c in lockstep['per_core'])}")
        return 0
    platform = PrototypingPlatform(result.program, source_arch=arch,
                                   backend=args.backend)
    run = platform.run()
    print(f"exit={run.exit_code} target_cycles={run.target_cycles} "
          f"emulated_cycles={run.emulated_cycles} "
          f"cpi={run.target_cpi:.2f}")
    if args.backend == "native":
        context = (platform._compiler.native_context
                   if platform._compiler else None)
        if context is None:
            print("native: unavailable (no C toolchain or REPRO_NATIVE=0); "
                  "ran on the Python emitter")
        else:
            print(f"native: {context.n_native_regions} regions compiled "
                  f"({context.binding.kind}), {context.regions_native} "
                  f"entered, {context.regions_demoted} demoted to Python")
    elif args.backend == "tiered" and platform._compiler is not None:
        tier_stats = platform._compiler.tier_stats()
        counts = {"interp": 0, "python": 0, "native": 0}
        for info in tier_stats["regions"].values():
            counts[info["tier"]] += 1
        print(f"tiered: {counts['interp']} regions interpreted, "
              f"{tier_stats['promoted_python']} promoted to Python, "
              f"{tier_stats['promoted_native']} promoted to native "
              f"superblocks, {tier_stats['demoted']} demoted")
    if run.uart_output:
        print(f"uart: {run.uart_output!r}")
    return 0


def _run_cluster(program, arch, args) -> int:
    """Run a translated program on an N-SoC cluster (``--nodes``)."""
    from repro.vliw.cluster import Cluster
    from repro.vliw.fabric import FabricConfig

    try:
        cluster = Cluster(
            program, socs=args.nodes, cores=args.cores,
            backends=args.backend, barrier=args.barrier, source_arch=arch,
            core_quantum=args.quantum,
            fabric=FabricConfig(latency=args.fabric_latency,
                                word_cycles=args.fabric_word_cycles,
                                topology=args.fabric_topology))
        result = cluster.run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for node, soc in enumerate(result.per_soc):
        for index, run in enumerate(soc.per_core):
            print(f"soc{node}.core{index}: exit={run.exit_code} "
                  f"target_cycles={run.target_cycles} "
                  f"emulated_cycles={run.emulated_cycles} "
                  f"cpi={run.target_cpi:.2f}")
            if run.uart_output:
                print(f"soc{node}.core{index} uart: {run.uart_output!r}")
    fabric = result.fabric
    print(f"cluster: {result.n_socs} SoCs x {args.cores} cores, "
          f"{args.barrier} barrier, quantum {cluster.quantum}, "
          f"{result.rounds} windows, {result.target_cycles} target cycles")
    print(f"fabric ({args.fabric_topology}): "
          f"{fabric['words_routed']} words routed, "
          f"{fabric['hop_cycles']} hop cycles, "
          f"{fabric['ingress_conflicts']} ingress conflicts, "
          f"{fabric['egress_wait_cycles']} egress wait cycles")
    return 0


def _run_level_sweep(obj, arch, args) -> int:
    """Run an object at every detail level via the sharded runner."""
    from repro.eval.sharded import ShardedRunner, ShardSpec

    runner = ShardedRunner(jobs=args.jobs, source_arch=arch)
    specs = [ShardSpec(obj=obj, level=level, backend=args.backend,
                       cores=args.cores)
             for level in (0, 1, 2, 3)]
    try:
        outcomes = runner.run(specs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"level sweep across {args.jobs} jobs "
          f"({args.cores} core{'s' if args.cores > 1 else ''} each):")
    for outcome in outcomes:
        run = outcome.result
        print(f"  L{outcome.spec.level}: exit={run.exit_code} "
              f"target_cycles={run.target_cycles} "
              f"emulated_cycles={run.emulated_cycles} "
              f"cpi={run.target_cpi:.2f} "
              f"wall={outcome.wall_seconds * 1e3:.1f}ms")
    return 0


def run_main(argv: list[str] | None = None) -> int:
    """Execute an object file on a reference simulator."""
    parser = argparse.ArgumentParser(
        prog="repro-run", description=run_main.__doc__)
    parser.add_argument("object")
    parser.add_argument("--simulator", default="cycle",
                        choices=("functional", "cycle", "interpreted", "rtl"),
                        help="which reference simulator to use")
    parser.add_argument("--arch", help="source architecture XML file")
    parser.add_argument("--max-instructions", type=int, default=50_000_000)
    args = parser.parse_args(argv)
    from repro.arch.xmlio import source_arch_from_xml
    from repro.refsim.iss import (
        CycleAccurateISS,
        FunctionalISS,
        InterpretedISS,
    )
    from repro.refsim.rtlsim import RtlSimulator

    classes = {
        "functional": FunctionalISS,
        "cycle": CycleAccurateISS,
        "interpreted": InterpretedISS,
        "rtl": RtlSimulator,
    }
    try:
        obj = _load_object(args.object)
        arch = None
        if args.arch:
            with open(args.arch) as handle:
                arch = source_arch_from_xml(handle.read())
        simulator = classes[args.simulator](obj, arch)
        if args.simulator == "rtl":
            result = simulator.run()
        else:
            result = simulator.run(max_instructions=args.max_instructions)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"exit={result.exit_code} instructions={result.instructions} "
          f"cycles={result.cycles} cpi={result.cpi:.3f}")
    if result.uart_output:
        print(f"uart: {result.uart_output!r}")
    return 0


def fuzz_main(argv: list[str] | None = None) -> int:
    """Differentially fuzz the translation pipeline with random programs.

    Generates seeded random minic programs and checks that every
    execution configuration — interpretive vs packet-compiled backend,
    one core vs an N-core lockstep SoC, detail levels 0-3 — produces
    bit-identical observables, and that the exit checksum matches the
    generator's independent Python prediction.  Failing programs are
    shrunk to a minimal reproducer and dumped into the corpus
    directory.
    """
    parser = argparse.ArgumentParser(
        prog="repro-fuzz", description=fuzz_main.__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="population seed (same seed + index => "
                             "byte-identical program)")
    parser.add_argument("--count", type=int, default=50,
                        help="number of programs to generate and check")
    parser.add_argument("--cores", type=int, default=2,
                        help="core count for the lockstep SoC check "
                             "(1 disables the multi-core sweep)")
    parser.add_argument("--backend", default="both",
                        choices=(*_backend_choices(), "both", "all"),
                        help="platform backend(s) to cross-check: one "
                             "registered backend, 'both' (interp + "
                             "compiled), or 'all' (every registered "
                             "backend)")
    parser.add_argument("--levels", default="0,1,2,3",
                        help="comma-separated detail levels to sweep")
    parser.add_argument("--corpus-dir", default="tests/fuzz_corpus",
                        help="where shrunk reproducers are written")
    parser.add_argument("--no-shrink", action="store_true",
                        help="dump failing programs unshrunk")
    parser.add_argument("--max-shrink", type=int, default=400,
                        help="shrinking attempt budget per failure")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print a line per program, not only failures")
    args = parser.parse_args(argv)

    from repro.fuzz import FuzzConfig, generate, shrink
    from repro.fuzz.oracle import check_generated

    if args.count < 1 or args.cores < 1 or args.seed < 0:
        print("error: --count/--cores must be >= 1 and --seed >= 0",
              file=sys.stderr)
        return 1
    try:
        levels = tuple(int(part) for part in args.levels.split(","))
    except ValueError:
        levels = ()
    if not levels or any(level not in (0, 1, 2, 3) for level in levels):
        print("error: --levels must be a comma-separated subset of 0,1,2,3",
              file=sys.stderr)
        return 1
    if args.backend == "both":
        backends = ("interp", "compiled")
    elif args.backend == "all":
        backends = _backend_choices()
    else:
        backends = (args.backend,)
    config = FuzzConfig(levels=levels, backends=backends, cores=args.cores)
    configurations = len(levels) * (len(backends) + (args.cores > 1))

    failures = 0
    for index in range(args.count):
        program = generate(args.seed, index)
        verdict = check_generated(program, config)
        if verdict.ok:
            if args.verbose:
                print(f"program {index}: {verdict.summary()}")
            continue
        failures += 1
        print(f"program {index}: FAIL — {verdict.summary()}")
        reproducer = program
        if not args.no_shrink:
            def still_fails(candidate):
                return not check_generated(candidate, config).ok

            reproducer = shrink(program, still_fails,
                                max_attempts=args.max_shrink)
            # the shrunk program may fail differently than the original;
            # record the verdict that matches the dumped artifact
            verdict = check_generated(reproducer, config)
        path = _dump_reproducer(args.corpus_dir, args.seed, index,
                                reproducer, verdict)
        print(f"  reproducer: {path}")

    print(f"checked {args.count} programs x {configurations} "
          f"configurations (levels {','.join(map(str, levels))}, "
          f"backends {'/'.join(backends)}, cores {args.cores}): "
          f"{failures} failure(s)")
    return 1 if failures else 0


def _dump_reproducer(corpus_dir: str, seed: int, index: int,
                     program, verdict) -> str:
    """Write the shrunk source + a JSON verdict next to it."""
    import json
    import os

    os.makedirs(corpus_dir, exist_ok=True)
    stem = os.path.join(corpus_dir, f"fuzz_{seed}_{index}")
    source = program.render()
    try:
        expected_exit, expected_uart = program.evaluate()
    except Exception:  # pragma: no cover - mirror crash is the finding
        expected_exit, expected_uart = None, b""
    with open(stem + ".mc", "w") as handle:
        handle.write(source)
    with open(stem + ".json", "w") as handle:
        json.dump({
            "seed": seed,
            "index": index,
            "expected_exit": expected_exit,
            "expected_uart": expected_uart.decode("latin-1"),
            "mismatches": [str(m) for m in verdict.mismatches],
        }, handle, indent=2)
        handle.write("\n")
    return stem + ".mc"


def serve_main(argv: list[str] | None = None) -> int:
    """Run the resident simulation service (see docs/serving.md).

    A long-lived HTTP/JSON server that accepts translate/measure/fuzz
    jobs and executes them on one persistent sharded runner whose
    translation, region and native-module caches stay warm across
    requests — repeated sweeps pay no cold-start cost.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=serve_main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8357,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes in the persistent pool "
                             "(default: usable CPUs; 1 executes shards "
                             "inline)")
    parser.add_argument("--max-cached", type=int, default=None,
                        help="bound the object/translation/precompile "
                             "memos with LRU eviction (default 256)")
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 1
    if args.max_cached is not None and args.max_cached < 1:
        print("error: --max-cached must be >= 1", file=sys.stderr)
        return 1
    from repro.serve.server import DEFAULT_MAX_CACHED, ReproServe

    server = ReproServe(host=args.host, port=args.port, jobs=args.jobs,
                        max_cached=(args.max_cached
                                    if args.max_cached is not None
                                    else DEFAULT_MAX_CACHED))
    server.run_forever()
    return 0


def submit_main(argv: list[str] | None = None) -> int:
    """Submit a sweep to a running repro-serve (see repro.serve.client)."""
    from repro.serve.client import submit_main as _submit_main

    return _submit_main(argv)


def experiments_main(argv: list[str] | None = None) -> int:
    """Regenerate the paper's tables and figures."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description=experiments_main.__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="skip Table 2 (the slow RTL measurements)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard the measurements across N worker "
                             "processes (identical numbers, less wall "
                             "clock)")
    parser.add_argument("--backend", default="interp",
                        choices=_backend_choices(),
                        help="platform execution backend for the "
                             "measurements (identical observables)")
    parser.add_argument("-o", "--output",
                        help="also write the reports to a file")
    args = parser.parse_args(argv)
    from repro.eval.experiments import run_all

    reports = run_all(quick=args.quick, jobs=args.jobs, backend=args.backend)
    text = "\n\n".join(report.text for report in reports)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0
