"""Architecture description model.

The paper's translator is split into a processor-independent library and
a description of the *source processor* (pipelines, caches, instruction
set) that is "usually defined in an XML file".  This module is the typed
in-memory form of that description; :mod:`repro.arch.xmlio` converts it
to and from XML.

Two descriptions exist:

* :class:`SourceArch` — the emulated SoC core (TriCore-like): memory
  map, dual-issue pipeline parameters, branch-cost table, instruction
  cache geometry, clock rate.
* :class:`TargetArch` — the prototyping platform's VLIW processor
  (C6x-like): functional units, delay slots, register files, reserved
  registers for translator-internal use, clock rate.

The timing numbers here are the *single* source of truth: the reference
ISS, the static cycle calculator and the generated correction code all
read the same tables, mirroring the paper's design where the processor
description drives both prediction and generated code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ArchitectureError
from repro.utils.bits import is_power_of_two


@dataclass(frozen=True)
class MemoryMap:
    """Address layout of the source processor."""

    code_base: int = 0x8000_0000
    code_size: int = 0x0001_0000
    data_base: int = 0xD000_0000
    data_size: int = 0x0001_0000
    io_base: int = 0xF000_0000
    io_size: int = 0x0001_0000

    @property
    def stack_top(self) -> int:
        """Initial stack pointer (top of data RAM, 16-byte aligned)."""
        return (self.data_base + self.data_size - 16) & ~0xF

    def is_code(self, address: int) -> bool:
        return self.code_base <= address < self.code_base + self.code_size

    def is_data(self, address: int) -> bool:
        return self.data_base <= address < self.data_base + self.data_size

    def is_io(self, address: int) -> bool:
        return self.io_base <= address < self.io_base + self.io_size

    def validate(self) -> None:
        regions = [
            (self.code_base, self.code_size, "code"),
            (self.data_base, self.data_size, "data"),
            (self.io_base, self.io_size, "io"),
        ]
        for base, size, name in regions:
            if size <= 0:
                raise ArchitectureError(f"{name} region has non-positive size")
            if base & 0x3:
                raise ArchitectureError(f"{name} base is not word aligned")
        ordered = sorted(regions)
        for (b0, s0, n0), (b1, _s1, n1) in zip(ordered, ordered[1:]):
            if b0 + s0 > b1:
                raise ArchitectureError(f"regions {n0} and {n1} overlap")


@dataclass(frozen=True)
class PipelineModel:
    """Parameters of the source processor's in-order dual pipeline.

    The model follows the TriCore split into an integer pipeline (IP)
    and a load/store pipeline (LS).  One IP-class instruction may issue
    together with an immediately following LS-class instruction when no
    data dependence exists between them ("dual issue").  Loads and
    multiplies deliver their results late; a dependent instruction in
    the shadow stalls.
    """

    dual_issue: bool = True
    load_use_stall: int = 1
    mul_result_latency: int = 2
    io_access_cycles: int = 2

    def validate(self) -> None:
        if self.load_use_stall < 0:
            raise ArchitectureError("load_use_stall must be >= 0")
        if self.mul_result_latency < 1:
            raise ArchitectureError("mul_result_latency must be >= 1")
        if self.io_access_cycles < 0:
            raise ArchitectureError("io_access_cycles must be >= 0")


@dataclass(frozen=True)
class BranchModel:
    """Cycle costs of control transfers under static BTFN prediction.

    The predictor is the TriCore-style static scheme: backward
    conditional branches are predicted taken, forward ones not taken.
    Costs are total cycles consumed by the branch instruction for each
    (prediction, outcome) combination; ``min_cost`` is the amount the
    static cycle calculation can always account for, per Section 3.4.1
    of the paper ("such a conditional branch needs a minimum number of
    cycles in all cases").
    """

    taken_correct: int = 2
    not_taken_correct: int = 1
    mispredict: int = 4
    unconditional: int = 2
    call: int = 2
    ret: int = 3
    loop_taken: int = 1
    loop_exit: int = 4

    @property
    def min_conditional(self) -> int:
        """Cheapest possible cost of a conditional branch."""
        return min(
            self.taken_correct,
            self.not_taken_correct,
            self.mispredict,
        )

    @property
    def min_loop(self) -> int:
        """Cheapest possible cost of a hardware loop branch."""
        return min(self.loop_taken, self.loop_exit)

    def conditional_cost(self, taken: bool, predicted_taken: bool) -> int:
        """Cost of a conditional branch with the given outcome/prediction."""
        if taken == predicted_taken:
            return self.taken_correct if taken else self.not_taken_correct
        return self.mispredict

    def loop_cost(self, taken: bool) -> int:
        """Cost of the hardware ``loop`` instruction (predicted taken)."""
        return self.loop_taken if taken else self.loop_exit

    def validate(self) -> None:
        for name in (
            "taken_correct",
            "not_taken_correct",
            "mispredict",
            "unconditional",
            "call",
            "ret",
            "loop_taken",
            "loop_exit",
        ):
            if getattr(self, name) < 1:
                raise ArchitectureError(f"branch cost {name} must be >= 1")


@dataclass(frozen=True)
class ICacheModel:
    """Geometry and penalty of the source instruction cache."""

    enabled: bool = True
    ways: int = 2
    sets: int = 32
    line_size: int = 32
    miss_penalty: int = 10

    @property
    def size(self) -> int:
        """Total cache capacity in bytes."""
        return self.ways * self.sets * self.line_size

    def validate(self) -> None:
        if self.ways < 1:
            raise ArchitectureError("cache must have at least one way")
        if not is_power_of_two(self.sets):
            raise ArchitectureError("number of sets must be a power of two")
        if not is_power_of_two(self.line_size) or self.line_size < 4:
            raise ArchitectureError("line size must be a power of two >= 4")
        if self.miss_penalty < 1:
            raise ArchitectureError("miss penalty must be >= 1")


@dataclass(frozen=True)
class SourceArch:
    """Complete description of the emulated source processor."""

    name: str = "tricore-tc10gp"
    clock_hz: int = 48_000_000
    emulation_clock_hz: int = 8_000_000
    memory: MemoryMap = field(default_factory=MemoryMap)
    pipeline: PipelineModel = field(default_factory=PipelineModel)
    branch: BranchModel = field(default_factory=BranchModel)
    icache: ICacheModel = field(default_factory=ICacheModel)

    def validate(self) -> "SourceArch":
        if self.clock_hz <= 0 or self.emulation_clock_hz <= 0:
            raise ArchitectureError("clock rates must be positive")
        self.memory.validate()
        self.pipeline.validate()
        self.branch.validate()
        self.icache.validate()
        return self

    def with_icache(self, **kwargs) -> "SourceArch":
        """Return a copy with modified instruction-cache parameters."""
        return replace(self, icache=replace(self.icache, **kwargs))


@dataclass(frozen=True)
class TargetArch:
    """Description of the VLIW target processor on the platform."""

    name: str = "tms320c6x"
    clock_hz: int = 200_000_000
    registers_per_side: int = 16
    branch_delay_slots: int = 5
    load_delay_slots: int = 4
    mul_delay_slots: int = 1
    max_issue: int = 8
    sync_base: int = 0x0180_0000
    bridge_base: int = 0x0190_0000
    code_base: int = 0x0000_0000
    data_base: int = 0x8000_0000
    data_size: int = 0x0002_0000
    internal_base: int = 0x8002_0000
    internal_size: int = 0x0001_0000

    def validate(self) -> "TargetArch":
        if self.clock_hz <= 0:
            raise ArchitectureError("clock rate must be positive")
        if self.registers_per_side < 8 or self.registers_per_side > 32:
            raise ArchitectureError("registers_per_side must be in [8, 32]")
        if self.max_issue < 1:
            raise ArchitectureError("max_issue must be >= 1")
        for name in ("branch_delay_slots", "load_delay_slots", "mul_delay_slots"):
            if getattr(self, name) < 0:
                raise ArchitectureError(f"{name} must be >= 0")
        return self


def default_source_arch() -> SourceArch:
    """The built-in TriCore-TC10GP-like source description."""
    return SourceArch().validate()


def default_target_arch() -> TargetArch:
    """The built-in TMS320C6201-like target description."""
    return TargetArch().validate()
