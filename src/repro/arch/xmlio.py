"""XML serialization of architecture descriptions.

The paper's compiler reads the source-processor description (pipelines,
caches, instruction set) from an XML file that a tool turns into C++
classes.  The Python equivalent here parses the XML directly into the
dataclasses of :mod:`repro.arch.model`.  A writer is provided so the
built-in descriptions can be exported, edited and re-loaded.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.arch.model import (
    BranchModel,
    ICacheModel,
    MemoryMap,
    PipelineModel,
    SourceArch,
    TargetArch,
)
from repro.errors import ArchitectureError

_TRUE_VALUES = {"1", "true", "yes", "on"}
_FALSE_VALUES = {"0", "false", "no", "off"}


def _get_int(elem: ET.Element, name: str, default: int) -> int:
    raw = elem.get(name)
    if raw is None:
        return default
    try:
        return int(raw, 0)
    except ValueError as exc:
        raise ArchitectureError(
            f"attribute {name!r} of <{elem.tag}> is not an integer: {raw!r}"
        ) from exc


def _get_bool(elem: ET.Element, name: str, default: bool) -> bool:
    raw = elem.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUE_VALUES:
        return True
    if lowered in _FALSE_VALUES:
        return False
    raise ArchitectureError(
        f"attribute {name!r} of <{elem.tag}> is not a boolean: {raw!r}"
    )


def source_arch_from_xml(text: str) -> SourceArch:
    """Parse a ``<architecture>`` document into a :class:`SourceArch`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ArchitectureError(f"malformed architecture XML: {exc}") from exc
    if root.tag != "architecture":
        raise ArchitectureError(f"expected <architecture> root, got <{root.tag}>")

    defaults = SourceArch()
    name = root.get("name", defaults.name)

    clocks = root.find("clocks")
    clock_hz = defaults.clock_hz
    emulation_hz = defaults.emulation_clock_hz
    if clocks is not None:
        clock_hz = _get_int(clocks, "source_hz", clock_hz)
        emulation_hz = _get_int(clocks, "emulation_hz", emulation_hz)

    mem = defaults.memory
    memory_elem = root.find("memory")
    if memory_elem is not None:
        mem = MemoryMap(
            code_base=_get_int(memory_elem, "code_base", mem.code_base),
            code_size=_get_int(memory_elem, "code_size", mem.code_size),
            data_base=_get_int(memory_elem, "data_base", mem.data_base),
            data_size=_get_int(memory_elem, "data_size", mem.data_size),
            io_base=_get_int(memory_elem, "io_base", mem.io_base),
            io_size=_get_int(memory_elem, "io_size", mem.io_size),
        )

    pipe = defaults.pipeline
    pipe_elem = root.find("pipeline")
    if pipe_elem is not None:
        pipe = PipelineModel(
            dual_issue=_get_bool(pipe_elem, "dual_issue", pipe.dual_issue),
            load_use_stall=_get_int(pipe_elem, "load_use_stall", pipe.load_use_stall),
            mul_result_latency=_get_int(
                pipe_elem, "mul_result_latency", pipe.mul_result_latency
            ),
            io_access_cycles=_get_int(
                pipe_elem, "io_access_cycles", pipe.io_access_cycles
            ),
        )

    branch = defaults.branch
    branch_elem = root.find("branch")
    if branch_elem is not None:
        branch = BranchModel(
            taken_correct=_get_int(branch_elem, "taken_correct", branch.taken_correct),
            not_taken_correct=_get_int(
                branch_elem, "not_taken_correct", branch.not_taken_correct
            ),
            mispredict=_get_int(branch_elem, "mispredict", branch.mispredict),
            unconditional=_get_int(branch_elem, "unconditional", branch.unconditional),
            call=_get_int(branch_elem, "call", branch.call),
            ret=_get_int(branch_elem, "ret", branch.ret),
            loop_taken=_get_int(branch_elem, "loop_taken", branch.loop_taken),
            loop_exit=_get_int(branch_elem, "loop_exit", branch.loop_exit),
        )

    icache = defaults.icache
    icache_elem = root.find("icache")
    if icache_elem is not None:
        icache = ICacheModel(
            enabled=_get_bool(icache_elem, "enabled", icache.enabled),
            ways=_get_int(icache_elem, "ways", icache.ways),
            sets=_get_int(icache_elem, "sets", icache.sets),
            line_size=_get_int(icache_elem, "line_size", icache.line_size),
            miss_penalty=_get_int(icache_elem, "miss_penalty", icache.miss_penalty),
        )

    arch = SourceArch(
        name=name,
        clock_hz=clock_hz,
        emulation_clock_hz=emulation_hz,
        memory=mem,
        pipeline=pipe,
        branch=branch,
        icache=icache,
    )
    return arch.validate()


def source_arch_to_xml(arch: SourceArch) -> str:
    """Serialize a :class:`SourceArch` to an XML document string."""
    root = ET.Element("architecture", name=arch.name)
    ET.SubElement(
        root,
        "clocks",
        source_hz=str(arch.clock_hz),
        emulation_hz=str(arch.emulation_clock_hz),
    )
    mem = arch.memory
    ET.SubElement(
        root,
        "memory",
        code_base=hex(mem.code_base),
        code_size=hex(mem.code_size),
        data_base=hex(mem.data_base),
        data_size=hex(mem.data_size),
        io_base=hex(mem.io_base),
        io_size=hex(mem.io_size),
    )
    pipe = arch.pipeline
    ET.SubElement(
        root,
        "pipeline",
        dual_issue="true" if pipe.dual_issue else "false",
        load_use_stall=str(pipe.load_use_stall),
        mul_result_latency=str(pipe.mul_result_latency),
        io_access_cycles=str(pipe.io_access_cycles),
    )
    br = arch.branch
    ET.SubElement(
        root,
        "branch",
        taken_correct=str(br.taken_correct),
        not_taken_correct=str(br.not_taken_correct),
        mispredict=str(br.mispredict),
        unconditional=str(br.unconditional),
        call=str(br.call),
        ret=str(br.ret),
        loop_taken=str(br.loop_taken),
        loop_exit=str(br.loop_exit),
    )
    ic = arch.icache
    ET.SubElement(
        root,
        "icache",
        enabled="true" if ic.enabled else "false",
        ways=str(ic.ways),
        sets=str(ic.sets),
        line_size=str(ic.line_size),
        miss_penalty=str(ic.miss_penalty),
    )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def target_arch_from_xml(text: str) -> TargetArch:
    """Parse a ``<target>`` document into a :class:`TargetArch`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ArchitectureError(f"malformed target XML: {exc}") from exc
    if root.tag != "target":
        raise ArchitectureError(f"expected <target> root, got <{root.tag}>")
    defaults = TargetArch()
    arch = TargetArch(
        name=root.get("name", defaults.name),
        clock_hz=_get_int(root, "clock_hz", defaults.clock_hz),
        registers_per_side=_get_int(
            root, "registers_per_side", defaults.registers_per_side
        ),
        branch_delay_slots=_get_int(
            root, "branch_delay_slots", defaults.branch_delay_slots
        ),
        load_delay_slots=_get_int(root, "load_delay_slots", defaults.load_delay_slots),
        mul_delay_slots=_get_int(root, "mul_delay_slots", defaults.mul_delay_slots),
        max_issue=_get_int(root, "max_issue", defaults.max_issue),
        sync_base=_get_int(root, "sync_base", defaults.sync_base),
        bridge_base=_get_int(root, "bridge_base", defaults.bridge_base),
        code_base=_get_int(root, "code_base", defaults.code_base),
        data_base=_get_int(root, "data_base", defaults.data_base),
        data_size=_get_int(root, "data_size", defaults.data_size),
        internal_base=_get_int(root, "internal_base", defaults.internal_base),
        internal_size=_get_int(root, "internal_size", defaults.internal_size),
    )
    return arch.validate()


def target_arch_to_xml(arch: TargetArch) -> str:
    """Serialize a :class:`TargetArch` to an XML document string."""
    root = ET.Element(
        "target",
        name=arch.name,
        clock_hz=str(arch.clock_hz),
        registers_per_side=str(arch.registers_per_side),
        branch_delay_slots=str(arch.branch_delay_slots),
        load_delay_slots=str(arch.load_delay_slots),
        mul_delay_slots=str(arch.mul_delay_slots),
        max_issue=str(arch.max_issue),
        sync_base=hex(arch.sync_base),
        bridge_base=hex(arch.bridge_base),
        code_base=hex(arch.code_base),
        data_base=hex(arch.data_base),
        data_size=hex(arch.data_size),
        internal_base=hex(arch.internal_base),
        internal_size=hex(arch.internal_size),
    )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
