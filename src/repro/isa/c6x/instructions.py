"""Instruction set of the C6x-like VLIW target.

Operations carry exposed-pipeline delay slots (branch 5, load 4,
multiply 1); results are architecturally visible only after the delay,
and until then readers observe the old register value.  The scheduler
must honour this; the simulator's strict mode flags violations.

Operand conventions (mirroring the IR):

* ALU ops: ``dst``, ``src1`` and either ``src2`` (register) or ``imm``;
* ``MVK``/``MVKL`` sign-extended 16-bit constant, ``MVKH`` sets the
  upper halfword preserving the lower;
* loads: ``dst``, base register ``src1``, byte offset ``imm``;
* stores: value ``src1``, base ``src2``, byte offset ``imm``;
* ``B``: label string in ``target`` (resolved to a packet index at
  finalization) or register ``src1`` (indirect);
* every instruction may be predicated on ``pred`` (non-zero test,
  ``pred_sense=False`` inverts).

Documented relaxations versus the real C6201 are listed in
:mod:`repro.isa.c6x.units` and in DESIGN.md (16-bit immediates, full
comparison set, 15-bit load/store offsets, 32x32 multiply).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.arch.model import TargetArch
from repro.isa.c6x.registers import reg_name
from repro.isa.c6x.units import Unit


class TOp(enum.Enum):
    MV = "mv"
    MVK = "mvk"
    MVKL = "mvkl"
    MVKH = "mvkh"
    ADD = "add"
    SUB = "sub"
    MPY = "mpy"
    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDN = "andn"
    SHL = "shl"
    SHRU = "shru"
    SHRA = "shra"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLTU = "cmpltu"
    CMPGE = "cmpge"
    CMPGEU = "cmpgeu"
    LDW = "ldw"
    LDH = "ldh"
    LDHU = "ldhu"
    LDB = "ldb"
    LDBU = "ldbu"
    STW = "stw"
    STH = "sth"
    STB = "stb"
    B = "b"
    NOP = "nop"
    HALT = "halt"


LOAD_TOPS = frozenset({TOp.LDW, TOp.LDH, TOp.LDHU, TOp.LDB, TOp.LDBU})
STORE_TOPS = frozenset({TOp.STW, TOp.STH, TOp.STB})
MEMORY_TOPS = LOAD_TOPS | STORE_TOPS

#: unit kinds each operation may execute on.
UNIT_KINDS: dict[TOp, tuple[str, ...]] = {
    TOp.MV: ("L", "S", "D"),
    TOp.MVK: ("S", "L"),
    TOp.MVKL: ("S", "L"),
    TOp.MVKH: ("S", "L"),
    TOp.ADD: ("L", "S", "D"),
    TOp.SUB: ("L", "S", "D"),
    TOp.MPY: ("M",),
    TOp.AND: ("L", "S", "D"),
    TOp.OR: ("L", "S", "D"),
    TOp.XOR: ("L", "S", "D"),
    TOp.ANDN: ("L", "S", "D"),
    TOp.SHL: ("S",),
    TOp.SHRU: ("S",),
    TOp.SHRA: ("S",),
    TOp.MIN: ("L",),
    TOp.MAX: ("L",),
    TOp.ABS: ("L",),
    TOp.CMPEQ: ("L",),
    TOp.CMPNE: ("L",),
    TOp.CMPLT: ("L",),
    TOp.CMPLTU: ("L",),
    TOp.CMPGE: ("L",),
    TOp.CMPGEU: ("L",),
    TOp.LDW: ("D",),
    TOp.LDH: ("D",),
    TOp.LDHU: ("D",),
    TOp.LDB: ("D",),
    TOp.LDBU: ("D",),
    TOp.STW: ("D",),
    TOp.STH: ("D",),
    TOp.STB: ("D",),
    TOp.B: ("S",),
    TOp.NOP: (),
    TOp.HALT: ("S",),
}


def delay_slots(op: TOp, target: TargetArch) -> int:
    """Architectural delay slots of *op*."""
    if op is TOp.B:
        return target.branch_delay_slots
    if op in LOAD_TOPS:
        return target.load_delay_slots
    if op is TOp.MPY:
        return target.mul_delay_slots
    return 0


class TRole(enum.Enum):
    """Why the translator emitted this target instruction."""

    PROGRAM = "program"
    SYNC_START = "sync_start"
    SYNC_WAIT = "sync_wait"
    CORR_ADD = "corr_add"
    CORR_START = "corr_start"
    CORR_WAIT = "corr_wait"
    CORR_RESET = "corr_reset"
    CACHE = "cache"
    ADDR_FIXUP = "addr_fixup"
    PROLOGUE = "prologue"
    DEBUG = "debug"
    NOPPAD = "noppad"


@dataclass
class TargetInstr:
    """One target instruction inside an execute packet."""

    op: TOp
    unit: Unit | None = None
    dst: int | None = None
    src1: int | None = None
    src2: int | None = None
    imm: int | None = None
    pred: int | None = None
    pred_sense: bool = True
    target: str | None = None  # branch label / MVK label reference
    role: TRole = TRole.PROGRAM
    src_addr: int | None = None
    comment: str = ""
    #: device-ordered memory operation (I/O or sync device)
    device: bool = False

    def is_load(self) -> bool:
        return self.op in LOAD_TOPS

    def is_store(self) -> bool:
        return self.op in STORE_TOPS

    def is_memory(self) -> bool:
        return self.op in MEMORY_TOPS

    def is_branch(self) -> bool:
        return self.op is TOp.B

    def reads(self) -> tuple[int, ...]:
        regs: list[int] = []
        if self.op in STORE_TOPS:
            if self.src1 is not None:
                regs.append(self.src1)
            if self.src2 is not None:
                regs.append(self.src2)
        elif self.op is TOp.B:
            if self.src1 is not None:
                regs.append(self.src1)
        elif self.op is TOp.MVKH:
            if self.dst is not None:
                regs.append(self.dst)  # preserves the low halfword
        elif self.op not in (TOp.MVK, TOp.MVKL, TOp.NOP, TOp.HALT):
            if self.src1 is not None:
                regs.append(self.src1)
            if self.src2 is not None:
                regs.append(self.src2)
        if self.pred is not None:
            regs.append(self.pred)
        return tuple(regs)

    def writes(self) -> tuple[int, ...]:
        return (self.dst,) if self.dst is not None else ()

    def retargeted(self, label: str) -> "TargetInstr":
        return replace(self, target=label)

    def render(self, target_arch: TargetArch) -> str:
        """Assembly-like rendering for listings and debugging."""
        parts: list[str] = []
        if self.pred is not None:
            bang = "" if self.pred_sense else "!"
            parts.append(f"[{bang}{reg_name(self.pred, target_arch)}]")
        unit = str(self.unit) if self.unit else ""
        parts.append(f"{self.op.value.upper()}{unit and ' ' + unit}")
        ops: list[str] = []
        if self.op in LOAD_TOPS:
            ops.append(f"*+{reg_name(self.src1, target_arch)}({self.imm or 0})")
            ops.append(reg_name(self.dst, target_arch))
        elif self.op in STORE_TOPS:
            ops.append(reg_name(self.src1, target_arch))
            ops.append(f"*+{reg_name(self.src2, target_arch)}({self.imm or 0})")
        elif self.op is TOp.B:
            ops.append(self.target if self.target is not None
                       else reg_name(self.src1, target_arch))
        elif self.op is TOp.NOP:
            if self.imm and self.imm > 1:
                ops.append(str(self.imm))
        else:
            if self.src1 is not None:
                ops.append(reg_name(self.src1, target_arch))
            if self.src2 is not None:
                ops.append(reg_name(self.src2, target_arch))
            elif self.imm is not None:
                ops.append(hex(self.imm) if abs(self.imm) > 4096 else str(self.imm))
            if self.dst is not None:
                ops.append(reg_name(self.dst, target_arch))
        text = " ".join(parts)
        if ops:
            text += " " + ", ".join(ops)
        if self.comment:
            text += f"   ; {self.comment}"
        return text
