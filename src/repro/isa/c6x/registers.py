"""Register model of the C6x-like VLIW target.

Two register files A and B with ``registers_per_side`` registers each
(16 for the C6201-like default).  Target registers are numbered
``0..R-1`` = A0..A(R-1) and ``R..2R-1`` = B0..B(R-1).
"""

from __future__ import annotations

from repro.arch.model import TargetArch


def reg_count(target: TargetArch) -> int:
    return 2 * target.registers_per_side


def side_of(reg: int, target: TargetArch) -> int:
    """0 for the A file, 1 for the B file."""
    return 0 if reg < target.registers_per_side else 1


def reg_name(reg: int, target: TargetArch) -> str:
    per_side = target.registers_per_side
    if 0 <= reg < per_side:
        return f"A{reg}"
    if per_side <= reg < 2 * per_side:
        return f"B{reg - per_side}"
    raise ValueError(f"not a target register: {reg}")


def parse_reg(text: str, target: TargetArch) -> int:
    text = text.strip().upper()
    if len(text) >= 2 and text[0] in "AB" and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < target.registers_per_side:
            return index + (0 if text[0] == "A" else target.registers_per_side)
    raise ValueError(f"invalid target register {text!r}")
