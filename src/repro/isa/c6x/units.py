"""Functional units of the C6x-like VLIW target.

Eight units — .L1 .S1 .M1 .D1 on the A side, .L2 .S2 .M2 .D2 on the B
side.  Unit kinds constrain which operations may execute where (the
"further transformation" of the paper that assigns every instruction to
the functional unit it will run on).

Documented relaxations versus a real C6201: no cross-path limits, the
full comparison set is available on .L, and logic operations are also
allowed on .D (C64x-style).
"""

from __future__ import annotations

import enum


class Unit(enum.Enum):
    L1 = ("L", 0)
    S1 = ("S", 0)
    M1 = ("M", 0)
    D1 = ("D", 0)
    L2 = ("L", 1)
    S2 = ("S", 1)
    M2 = ("M", 1)
    D2 = ("D", 1)

    def __init__(self, kind: str, side: int) -> None:
        self.kind = kind
        self.side = side

    def __str__(self) -> str:
        return f".{self.name}"


ALL_UNITS: tuple[Unit, ...] = tuple(Unit)

UNITS_BY_KIND: dict[str, tuple[Unit, ...]] = {
    "L": (Unit.L1, Unit.L2),
    "S": (Unit.S1, Unit.S2),
    "M": (Unit.M1, Unit.M2),
    "D": (Unit.D1, Unit.D2),
}
