"""Execute packets and translated-program container.

A fetch packet on the real C6x holds eight instruction slots whose
p-bits chain parallel instructions into *execute packets*.  The
simulator works directly at execute-packet granularity: one packet
issues per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.model import TargetArch
from repro.errors import TranslationError
from repro.isa.c6x.instructions import TargetInstr, TOp


@dataclass
class ExecutePacket:
    """Up to eight instructions that issue in the same cycle."""

    instrs: list[TargetInstr] = field(default_factory=list)

    def validate(self, target: TargetArch) -> None:
        if len(self.instrs) > target.max_issue:
            raise TranslationError(
                f"packet has {len(self.instrs)} instructions "
                f"(max {target.max_issue})")
        units = [i.unit for i in self.instrs if i.op is not TOp.NOP]
        if None in units:
            raise TranslationError("instruction without a functional unit")
        if len(set(units)) != len(units):
            raise TranslationError("functional unit used twice in a packet")
        branches = [i for i in self.instrs if i.is_branch()]
        if len(branches) > 1:
            raise TranslationError("more than one branch in a packet")
        writes = [reg for i in self.instrs for reg in i.writes()]
        if len(set(writes)) != len(writes):
            raise TranslationError("two writes to one register in a packet")

    def is_nop(self) -> bool:
        return all(i.op is TOp.NOP for i in self.instrs)


@dataclass
class BlockInfo:
    """Metadata of one translated source basic block."""

    source_addr: int
    n_instructions: int
    predicted_cycles: int
    entry_label: str


@dataclass
class C6xProgram:
    """A translated program: packets, labels, data image, metadata."""

    target: TargetArch
    packets: list[ExecutePacket] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    entry_label: str = "__entry"
    #: initial target data memory: list of (address, bytes)
    data_image: list[tuple[int, bytes]] = field(default_factory=list)
    #: packet index of each block head -> BlockInfo
    block_at: dict[int, BlockInfo] = field(default_factory=dict)
    #: source address of each block head -> packet index (indirect
    #: branches carry source addresses in registers at run time)
    addr_to_packet: dict[int, int] = field(default_factory=dict)
    #: source register -> bound target register (for the debugger)
    reg_binding: dict[int, int] = field(default_factory=dict)
    #: spilled source registers -> spill-slot address
    spill_slots: dict[int, int] = field(default_factory=dict)
    #: packet index -> source addresses covered (debug/line map)
    line_map: dict[int, list[int]] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        return self.labels[self.entry_label]

    def label_packet(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise TranslationError(f"undefined label {label!r}") from None

    def finalize(self) -> "C6xProgram":
        """Resolve branch labels and validate every packet."""
        for index, packet in enumerate(self.packets):
            packet.validate(self.target)
            for instr in packet.instrs:
                if instr.is_branch() and instr.target is not None:
                    if instr.target not in self.labels:
                        raise TranslationError(
                            f"branch to undefined label {instr.target!r} "
                            f"in packet {index}")
        if self.entry_label not in self.labels:
            raise TranslationError("program has no entry label")
        return self

    def listing(self) -> str:
        """Human-readable listing of the whole program."""
        by_packet: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_packet.setdefault(index, []).append(label)
        lines: list[str] = []
        for index, packet in enumerate(self.packets):
            for label in by_packet.get(index, ()):
                lines.append(f"{label}:")
            info = self.block_at.get(index)
            if info is not None:
                lines.append(f"        ; block @{info.source_addr:#010x} "
                             f"({info.n_instructions} source instrs, "
                             f"{info.predicted_cycles} predicted cycles)")
            for pos, instr in enumerate(packet.instrs):
                bars = "||" if pos else "  "
                lines.append(f"  {index:5d} {bars} {instr.render(self.target)}")
        return "\n".join(lines)

    @property
    def n_instructions(self) -> int:
        return sum(len(p.instrs) for p in self.packets)
