"""Binary encoding and decoding of the TriCore-like instruction set.

Instructions are a little-endian halfword stream.  Bit 0 of the first
halfword selects the width: ``1`` marks a 32-bit instruction (opcode in
bits [7:1]), ``0`` a 16-bit instruction (opcode in bits [6:1]).  Field
layouts are defined per format in
:data:`repro.isa.tricore.instructions.FORMAT_FIELDS`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DecodingError, EncodingError
from repro.isa.tricore.instructions import (
    FORMAT_FIELDS,
    LONG_OPCODE_TABLE,
    SHORT_OPCODE_TABLE,
    InstructionSpec,
)
from repro.utils.bits import fits_signed, fits_unsigned, sign_extend


def encode(spec: InstructionSpec, fields: dict[str, int]) -> bytes:
    """Encode *fields* into the binary form of *spec*.

    Signed fields accept negative values; all fields are range-checked.
    Returns 2 or 4 little-endian bytes.
    """
    layout = FORMAT_FIELDS[spec.fmt]
    expected = {name for name, _lo, _width, _signed in layout}
    given = set(fields)
    if expected != given:
        raise EncodingError(
            f"{spec.key}: expected fields {sorted(expected)}, got {sorted(given)}"
        )
    if spec.width == 4:
        word = 1 | (spec.opcode << 1)
        if not fits_unsigned(spec.opcode, 7):
            raise EncodingError(f"{spec.key}: opcode does not fit in 7 bits")
    else:
        word = spec.opcode << 1
        if not fits_unsigned(spec.opcode, 6):
            raise EncodingError(f"{spec.key}: opcode does not fit in 6 bits")
    for name, lo, width, signed in layout:
        value = fields[name]
        if signed:
            if not fits_signed(value, width):
                raise EncodingError(
                    f"{spec.key}: field {name}={value} does not fit in "
                    f"signed {width} bits"
                )
            value &= (1 << width) - 1
        elif not fits_unsigned(value, width):
            raise EncodingError(
                f"{spec.key}: field {name}={value} does not fit in "
                f"unsigned {width} bits"
            )
        word |= value << lo
    return word.to_bytes(spec.width, "little")


def decode_word(word: int, width: int) -> tuple[InstructionSpec, dict[str, int]]:
    """Decode an already-assembled 16- or 32-bit instruction word."""
    if width == 4:
        opcode = (word >> 1) & 0x7F
        spec = LONG_OPCODE_TABLE.get(opcode)
    else:
        opcode = (word >> 1) & 0x3F
        spec = SHORT_OPCODE_TABLE.get(opcode)
    if spec is None:
        raise DecodingError(f"unknown {width * 8}-bit opcode {opcode:#x}")
    fields: dict[str, int] = {}
    for name, lo, fwidth, signed in FORMAT_FIELDS[spec.fmt]:
        raw = (word >> lo) & ((1 << fwidth) - 1)
        fields[name] = sign_extend(raw, fwidth) if signed else raw
    return spec, fields


def decode_at(
    fetch16: Callable[[int], int], address: int
) -> tuple[InstructionSpec, dict[str, int], int]:
    """Decode the instruction at *address*.

    *fetch16* returns the little-endian halfword at a given address.
    Returns ``(spec, fields, width_in_bytes)``.
    """
    if address & 1:
        raise DecodingError("instruction address is not halfword aligned", address)
    first = fetch16(address)
    if first & 1:
        word = first | (fetch16(address + 2) << 16)
        try:
            spec, fields = decode_word(word, 4)
        except DecodingError as exc:
            raise DecodingError(str(exc), address) from None
        return spec, fields, 4
    try:
        spec, fields = decode_word(first, 2)
    except DecodingError as exc:
        raise DecodingError(str(exc), address) from None
    return spec, fields, 2


def decode_bytes(blob: bytes, base_address: int = 0) -> list[tuple[int, InstructionSpec, dict[str, int], int]]:
    """Decode a contiguous byte blob into ``(addr, spec, fields, width)``.

    Stops at the end of the blob; raises :class:`DecodingError` on any
    unknown opcode or truncated final instruction.
    """

    def fetch16(addr: int) -> int:
        off = addr - base_address
        if off + 2 > len(blob):
            raise DecodingError("truncated instruction", addr)
        return int.from_bytes(blob[off : off + 2], "little")

    result = []
    addr = base_address
    end = base_address + len(blob)
    while addr < end:
        spec, fields, width = decode_at(fetch16, addr)
        result.append((addr, spec, fields, width))
        addr += width
    return result
