"""XML form of the instruction-set description.

The paper: "this processor is usually defined in an XML file that is
translated into the appropriate C++ code by a tool.  This XML file
contains an architecture description and a description of the
instruction set of the processor."  The architecture part lives in
:mod:`repro.arch.xmlio`; this module serializes the *instruction set*:
encoding (format + opcode), timing classification, and the semantics
reference (the key under which the IR expansion template is
registered).

The loader validates a document against the built-in table — the
Python analogue of the paper's XML→C++ generation step, where the
generated artifact must agree with the description.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import ArchitectureError
from repro.isa.tricore.instructions import (
    FORMAT_FIELDS,
    SPEC_BY_KEY,
    SPECS,
    Fmt,
    InstructionSpec,
)
from repro.translator.ir import BranchKind


def instruction_set_to_xml() -> str:
    """Serialize the built-in instruction table."""
    root = ET.Element("instructionset", name="tricore-like",
                      count=str(len(SPECS)))
    formats = ET.SubElement(root, "formats")
    for fmt in Fmt:
        fmt_elem = ET.SubElement(formats, "format", name=fmt.value)
        for name, lo, width, signed in FORMAT_FIELDS[fmt]:
            ET.SubElement(fmt_elem, "field", name=name, lo=str(lo),
                          width=str(width),
                          signed="true" if signed else "false")
    instructions = ET.SubElement(root, "instructions")
    for spec in SPECS:
        attrs = {
            "key": spec.key,
            "mnemonic": spec.mnemonic,
            "opcode": hex(spec.opcode),
            "format": spec.fmt.value,
            "class": spec.iclass,
            "semantics": spec.key,  # IR template registered under the key
        }
        if spec.branch is not BranchKind.NONE:
            attrs["branch"] = spec.branch.value
        if spec.is_load:
            attrs["load"] = "true"
        if spec.is_store:
            attrs["store"] = "true"
        if spec.is_mul:
            attrs["mul"] = "true"
        if spec.syntax:
            attrs["syntax"] = " ".join(spec.syntax)
        ET.SubElement(instructions, "instruction", **attrs)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def load_instruction_set(text: str) -> list[InstructionSpec]:
    """Parse and validate an instruction-set document.

    Every described instruction must exist in the built-in table with
    matching encoding and classification (semantics are referenced by
    key, exactly like the paper's generated C++ classes reference their
    intermediate-code templates).  Returns the resolved specs in
    document order.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ArchitectureError(f"malformed instruction-set XML: {exc}") \
            from exc
    if root.tag != "instructionset":
        raise ArchitectureError(
            f"expected <instructionset>, got <{root.tag}>")
    instructions = root.find("instructions")
    if instructions is None:
        raise ArchitectureError("missing <instructions> element")
    resolved: list[InstructionSpec] = []
    for elem in instructions.iter("instruction"):
        key = elem.get("key")
        if key is None:
            raise ArchitectureError("<instruction> without a key")
        spec = SPEC_BY_KEY.get(key)
        if spec is None:
            raise ArchitectureError(
                f"instruction {key!r} has no registered semantics")
        opcode = elem.get("opcode")
        if opcode is not None and int(opcode, 0) != spec.opcode:
            raise ArchitectureError(
                f"instruction {key!r}: opcode {opcode} does not match the "
                f"registered encoding {spec.opcode:#x}")
        fmt = elem.get("format")
        if fmt is not None and fmt != spec.fmt.value:
            raise ArchitectureError(
                f"instruction {key!r}: format {fmt!r} does not match "
                f"{spec.fmt.value!r}")
        iclass = elem.get("class")
        if iclass is not None and iclass != spec.iclass:
            raise ArchitectureError(
                f"instruction {key!r}: class {iclass!r} does not match "
                f"{spec.iclass!r}")
        resolved.append(spec)
    return resolved
