"""Disassembler for the TriCore-like ISA.

Renders decoded instructions back to assembler syntax that re-assembles
to identical bytes: long-offset forms are printed with their explicit
``.l`` mnemonics, branch targets become generated labels, and the
output starts with ``.org`` so addresses are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.tricore.encoding import decode_bytes
from repro.isa.tricore.instructions import (
    MODE_POST_INCREMENT,
    MODE_PRE_INCREMENT,
    Fmt,
    InstructionSpec,
)
from repro.objfile.elf import ObjectFile

#: spec key -> explicit mnemonic needed for exact re-assembly.
_EXPLICIT_MNEMONIC = {
    "ld_w_bol": "ld.w.l",
    "st_w_bol": "st.w.l",
    "lea_bol": "lea.l",
}


@dataclass
class DisasmLine:
    """One disassembled instruction."""

    addr: int
    width: int
    spec: InstructionSpec
    fields: dict[str, int]
    text: str


def _branch_target(addr: int, fields: dict[str, int]) -> int:
    return (addr + 2 * fields["disp"]) & 0xFFFF_FFFF


def _format_imm(value: int) -> str:
    if -1024 < value < 1024:
        return str(value)
    return hex(value & 0xFFFF_FFFF) if value >= 0 else f"-{hex(-value)}"


def _render(spec: InstructionSpec, fields: dict[str, int], addr: int,
            labels: dict[int, str]) -> str:
    mnemonic = _EXPLICIT_MNEMONIC.get(spec.key, spec.mnemonic)
    parts: list[str] = []
    for token in spec.syntax:
        if token in ("mem", "mem0"):
            base = f"a{fields['b']}"
            mode = fields.get("mode", 0)
            off = fields.get("off", 0)
            if mode == MODE_PRE_INCREMENT:
                mem = f"[+{base}]"
            elif mode == MODE_POST_INCREMENT:
                mem = f"[{base}+]"
            else:
                mem = f"[{base}]"
            parts.append(mem + (_format_imm(off) if off else ""))
            continue
        name, kind = token.split(":")
        value = fields[name]
        if kind == "d":
            parts.append(f"d{value}")
        elif kind == "a":
            parts.append(f"a{value}")
        elif kind == "imm":
            parts.append(_format_imm(value))
        elif kind == "label":
            target = _branch_target(addr, fields)
            parts.append(labels.get(target, hex(target)))
    if parts:
        return f"{mnemonic} {', '.join(parts)}"
    return mnemonic


def disassemble_blob(blob: bytes, base_address: int = 0) -> list[DisasmLine]:
    """Disassemble a raw code blob into rendered lines."""
    decoded = decode_bytes(blob, base_address)
    labels: dict[int, str] = {}
    for addr, spec, fields, _width in decoded:
        if spec.is_branch and "disp" in fields:
            target = _branch_target(addr, fields)
            labels.setdefault(target, f"L_{target:08x}")
    lines = []
    for addr, spec, fields, width in decoded:
        text = _render(spec, fields, addr, labels)
        lines.append(DisasmLine(addr=addr, width=width, spec=spec,
                                fields=fields, text=text))
    return lines


def disassemble_object(obj: ObjectFile) -> str:
    """Disassemble the text section of *obj* to re-assemblable source."""
    text = obj.text()
    lines = disassemble_blob(text.data, text.addr)
    labels: dict[int, str] = {}
    for line in lines:
        if line.spec.is_branch and "disp" in line.fields:
            target = _branch_target(line.addr, line.fields)
            labels.setdefault(target, f"L_{target:08x}")
    # Prefer real symbol names where available.
    for name, sym in obj.symbols.items():
        if sym.addr in labels:
            labels[sym.addr] = name
    out = [".text", f".org {text.addr:#x}"]
    for line in lines:
        if line.addr in labels:
            out.append(f"{labels[line.addr]}:")
        out.append(f"    {_render(line.spec, line.fields, line.addr, labels)}")
    return "\n".join(out) + "\n"


def format_listing(blob: bytes, base_address: int = 0) -> str:
    """Human-oriented listing with addresses and raw encodings."""
    rows = []
    for line in disassemble_blob(blob, base_address):
        raw = blob[line.addr - base_address: line.addr - base_address + line.width]
        rows.append(f"{line.addr:08x}:  {raw.hex():<10}  {line.text}")
    return "\n".join(rows)
