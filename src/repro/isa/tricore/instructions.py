"""Instruction set of the TriCore-like source processor.

Every instruction is described by an :class:`InstructionSpec` that
bundles the binary encoding (format + opcode), the timing classification
used by the pipeline model (``ip`` integer pipeline vs ``ls`` load/store
pipeline, per the TriCore dual-pipeline organisation), and the semantic
expansion into the translator's intermediate code.

This mirrors the paper's design where the source processor is described
separately (instruction decoding plus "the semantics of the described
instruction written in an intermediate code") and combined with the
processor-independent translator library.  The same table can be
exported to / imported from XML via :mod:`repro.isa.tricore.xmlspec`.

Encoding summary (self-defined, TriCore-flavoured; little-endian
halfword stream, bit 0 of the first halfword selects the width):

========  ======================================================
Format    Fields (LSB numbering within the 16/32-bit word)
========  ======================================================
RR        op[7:1]=1, a[11:8], b[15:12], c[19:16]
RC9       op, a[11:8], k9 signed [20:12], c[24:21]
RLC       op, a[11:8], k16 [27:12], c[31:28]
BO        op, a[11:8], b[15:12], off10 signed [25:16], mode[27:26]
BOL       op, a[11:8], b[15:12], off16 signed [31:16]
B24       op, disp24 signed [31:8] (halfwords, PC-relative)
BRR       op, a[11:8], b[15:12], disp15 signed [30:16]
BRC       op, a[11:8], k4 signed [15:12], disp15 signed [30:16]
LOOP      op, b[11:8] (address reg), disp15 signed [30:16]
R1        op, a[11:8]
SYS       op only
SRR       op[6:1]=0, a[11:8], b[15:12]                 (16-bit)
SRC       op, a[11:8], k4 signed [15:12]               (16-bit)
SBR       op, disp8 signed [15:8] (implicit d15)       (16-bit)
SSYS      op only                                      (16-bit)
========  ======================================================

Documented simplifications relative to a real TriCore: shifts take an
unsigned count (no signed bidirectional shift), there is no hardware
divide (the runtime library provides it), ``call`` writes the return
address to ``a11`` without a context save, and the PSW carry/overflow
flags are not modelled (comparisons produce 0/1 in a register).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DecodingError
from repro.isa.tricore.registers import REG_COND16, REG_RA, areg
from repro.translator.ir import BranchKind, IRInstr, IROp, TempAllocator
from repro.utils.bits import s16, u32


class Fmt(enum.Enum):
    """Encoding formats; see the module docstring for field layouts."""

    RR = "rr"
    RC9 = "rc9"
    RLC = "rlc"
    BO = "bo"
    BOL = "bol"
    B24 = "b24"
    BRR = "brr"
    BRC = "brc"
    LOOP = "loop"
    R1 = "r1"
    SYS = "sys"
    SRR = "srr"
    SRC = "src"
    SBR = "sbr"
    SSYS = "ssys"


#: (name, lo, width, signed) field layouts per format, excluding the opcode.
FORMAT_FIELDS: dict[Fmt, tuple[tuple[str, int, int, bool], ...]] = {
    Fmt.RR: (("a", 8, 4, False), ("b", 12, 4, False), ("c", 16, 4, False)),
    Fmt.RC9: (("a", 8, 4, False), ("k", 12, 9, True), ("c", 21, 4, False)),
    Fmt.RLC: (("a", 8, 4, False), ("k", 12, 16, False), ("c", 28, 4, False)),
    Fmt.BO: (
        ("a", 8, 4, False),
        ("b", 12, 4, False),
        ("off", 16, 10, True),
        ("mode", 26, 2, False),
    ),
    Fmt.BOL: (("a", 8, 4, False), ("b", 12, 4, False), ("off", 16, 16, True)),
    Fmt.B24: (("disp", 8, 24, True),),
    Fmt.BRR: (("a", 8, 4, False), ("b", 12, 4, False), ("disp", 16, 15, True)),
    Fmt.BRC: (("a", 8, 4, False), ("k", 12, 4, True), ("disp", 16, 15, True)),
    Fmt.LOOP: (("b", 8, 4, False), ("disp", 16, 15, True)),
    Fmt.R1: (("a", 8, 4, False),),
    Fmt.SYS: (),
    Fmt.SRR: (("a", 8, 4, False), ("b", 12, 4, False)),
    Fmt.SRC: (("a", 8, 4, False), ("k", 12, 4, True)),
    Fmt.SBR: (("disp", 8, 8, True),),
    Fmt.SSYS: (),
}

#: Formats encoded in 16 bits.
SHORT_FORMATS = frozenset({Fmt.SRR, Fmt.SRC, Fmt.SBR, Fmt.SSYS})

#: Addressing-mode values of the BO format.
MODE_BASE_OFFSET = 0
MODE_POST_INCREMENT = 1
MODE_PRE_INCREMENT = 2


@dataclass
class ExpandCtx:
    """Context handed to semantic expanders."""

    pc: int
    next_pc: int
    temps: TempAllocator = field(default_factory=TempAllocator)


Expander = Callable[[dict[str, int], ExpandCtx], list[IRInstr]]


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one source instruction."""

    key: str  # unique identifier, e.g. "ld_w_bo"
    mnemonic: str  # assembly mnemonic, e.g. "ld.w"
    opcode: int
    fmt: Fmt
    iclass: str  # 'ip' (integer pipe) or 'ls' (load/store pipe)
    expand: Expander
    branch: BranchKind = BranchKind.NONE
    is_load: bool = False
    is_store: bool = False
    is_mul: bool = False
    syntax: tuple[str, ...] = ()
    """Operand pattern for the assembler/disassembler.

    Tokens: ``"<field>:d"`` data register, ``"<field>:a"`` address
    register, ``"<field>:imm"`` immediate expression, ``"<field>:label"``
    PC-relative branch target, ``"mem"`` a ``[aN]off`` operand with
    addressing modes, ``"mem0"`` a plain base+offset memory operand.
    """

    @property
    def width(self) -> int:
        """Instruction size in bytes (2 or 4)."""
        return 2 if self.fmt in SHORT_FORMATS else 4

    @property
    def is_branch(self) -> bool:
        return self.branch is not BranchKind.NONE


def _mk(op: IROp, **kwargs) -> IRInstr:
    return IRInstr(op, **kwargs)


def _binop_rr(ir_op: IROp) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        return [_mk(ir_op, dst=f["c"], a=f["a"], b=f["b"])]

    return expand


def _binop_rr_addr(ir_op: IROp) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        return [_mk(ir_op, dst=areg(f["c"]), a=areg(f["a"]), b=areg(f["b"]))]

    return expand


def _unop_rr(ir_op: IROp) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        return [_mk(ir_op, dst=f["c"], a=f["a"])]

    return expand


def _binop_rc(ir_op: IROp) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        return [_mk(ir_op, dst=f["c"], a=f["a"], imm=f["k"])]

    return expand


def _not_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.XOR, dst=f["c"], a=f["a"], imm=-1)]


def _mov_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MVK, dst=f["c"], imm=s16(f["k"]))]


def _mov_u_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MVK, dst=f["c"], imm=f["k"] & 0xFFFF)]


def _movh_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MVK, dst=f["c"], imm=u32(f["k"] << 16))]


def _movh_a_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MVK, dst=areg(f["c"]), imm=u32(f["k"] << 16))]


def _addi_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.ADD, dst=f["c"], a=f["a"], imm=s16(f["k"]))]


def _addih_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.ADD, dst=f["c"], a=f["a"], imm=u32(f["k"] << 16))]


def _mov_d_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    # mov.d dC, aA : data <- address register
    return [_mk(IROp.MV, dst=f["c"], a=areg(f["a"]))]


def _mov_a_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    # mov.a aC, dA : address <- data register
    return [_mk(IROp.MV, dst=areg(f["c"]), a=f["a"])]


def _mov_aa_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MV, dst=areg(f["c"]), a=areg(f["a"]))]


def _load(ir_op: IROp, addr_dest: bool = False) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        dest = areg(f["a"]) if addr_dest else f["a"]
        base = areg(f["b"])
        mode = f.get("mode", MODE_BASE_OFFSET)
        off = f["off"]
        if mode == MODE_BASE_OFFSET:
            return [_mk(ir_op, dst=dest, a=base, imm=off)]
        if mode == MODE_POST_INCREMENT:
            return [
                _mk(ir_op, dst=dest, a=base, imm=0),
                _mk(IROp.ADD, dst=base, a=base, imm=off),
            ]
        if mode == MODE_PRE_INCREMENT:
            return [
                _mk(IROp.ADD, dst=base, a=base, imm=off),
                _mk(ir_op, dst=dest, a=base, imm=0),
            ]
        raise DecodingError(f"invalid addressing mode {mode}", ctx.pc)

    return expand


def _store(ir_op: IROp, addr_src: bool = False) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        value = areg(f["a"]) if addr_src else f["a"]
        base = areg(f["b"])
        mode = f.get("mode", MODE_BASE_OFFSET)
        off = f["off"]
        if mode == MODE_BASE_OFFSET:
            return [_mk(ir_op, a=value, b=base, imm=off)]
        if mode == MODE_POST_INCREMENT:
            return [
                _mk(ir_op, a=value, b=base, imm=0),
                _mk(IROp.ADD, dst=base, a=base, imm=off),
            ]
        if mode == MODE_PRE_INCREMENT:
            return [
                _mk(IROp.ADD, dst=base, a=base, imm=off),
                _mk(ir_op, a=value, b=base, imm=0),
            ]
        raise DecodingError(f"invalid addressing mode {mode}", ctx.pc)

    return expand


def _lea_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.ADD, dst=areg(f["a"]), a=areg(f["b"]), imm=f["off"])]


def _branch_target(ctx: ExpandCtx, disp: int) -> int:
    return u32(ctx.pc + 2 * disp)


def _j_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target = _branch_target(ctx, f["disp"])
    return [_mk(IROp.B, imm=target, branch=BranchKind.JUMP)]


def _call_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target = _branch_target(ctx, f["disp"])
    return [
        _mk(IROp.MVK, dst=REG_RA, imm=ctx.next_pc),
        _mk(IROp.B, imm=target, branch=BranchKind.CALL),
    ]


def _ji_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.B, a=areg(f["a"]), branch=BranchKind.INDIRECT)]


def _calli_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target_copy = ctx.temps.fresh()
    return [
        _mk(IROp.MV, dst=target_copy, a=areg(f["a"])),
        _mk(IROp.MVK, dst=REG_RA, imm=ctx.next_pc),
        _mk(IROp.B, a=target_copy, branch=BranchKind.CALL_INDIRECT),
    ]


def _ret_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.B, a=REG_RA, branch=BranchKind.RET)]


def _cond_branch_rr(cmp_op: IROp) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        target = _branch_target(ctx, f["disp"])
        t = ctx.temps.fresh()
        return [
            _mk(cmp_op, dst=t, a=f["a"], b=f["b"]),
            _mk(IROp.B, imm=target, pred=t, branch=BranchKind.COND),
        ]

    return expand


def _cond_branch_rc(cmp_op: IROp) -> Expander:
    def expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
        target = _branch_target(ctx, f["disp"])
        t = ctx.temps.fresh()
        return [
            _mk(cmp_op, dst=t, a=f["a"], imm=f["k"]),
            _mk(IROp.B, imm=target, pred=t, branch=BranchKind.COND),
        ]

    return expand


def _loop_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target = _branch_target(ctx, f["disp"])
    counter = areg(f["b"])
    t = ctx.temps.fresh()
    return [
        _mk(IROp.ADD, dst=counter, a=counter, imm=-1),
        _mk(IROp.CMPNE, dst=t, a=counter, imm=0),
        _mk(IROp.B, imm=target, pred=t, branch=BranchKind.LOOP),
    ]


def _halt_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.HALT)]


def _nop_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.NOP)]


def _debug_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.NOP, comment="debug")]


# --- 16-bit expanders ---------------------------------------------------


def _mov16_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MV, dst=f["a"], a=f["b"])]


def _add16_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.ADD, dst=f["a"], a=f["a"], b=f["b"])]


def _sub16_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.SUB, dst=f["a"], a=f["a"], b=f["b"])]


def _mov16c_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.MVK, dst=f["a"], imm=f["k"])]


def _add16c_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    return [_mk(IROp.ADD, dst=f["a"], a=f["a"], imm=f["k"])]


def _jz16_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target = _branch_target(ctx, f["disp"])
    t = ctx.temps.fresh()
    return [
        _mk(IROp.CMPEQ, dst=t, a=REG_COND16, imm=0),
        _mk(IROp.B, imm=target, pred=t, branch=BranchKind.COND),
    ]


def _jnz16_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target = _branch_target(ctx, f["disp"])
    t = ctx.temps.fresh()
    return [
        _mk(IROp.CMPNE, dst=t, a=REG_COND16, imm=0),
        _mk(IROp.B, imm=target, pred=t, branch=BranchKind.COND),
    ]


def _j16_expand(f: dict[str, int], ctx: ExpandCtx) -> list[IRInstr]:
    target = _branch_target(ctx, f["disp"])
    return [_mk(IROp.B, imm=target, branch=BranchKind.JUMP)]


_RRR = ("c:d", "a:d", "b:d")
_RRA = ("c:a", "a:a", "b:a")
_RCK = ("c:d", "a:d", "k:imm")


def _build_specs() -> list[InstructionSpec]:
    specs: list[InstructionSpec] = []

    def add(key: str, mnemonic: str, opcode: int, fmt: Fmt, iclass: str,
            expand: Expander, syntax: tuple[str, ...], **flags) -> None:
        specs.append(
            InstructionSpec(
                key=key,
                mnemonic=mnemonic,
                opcode=opcode,
                fmt=fmt,
                iclass=iclass,
                expand=expand,
                syntax=syntax,
                **flags,
            )
        )

    # --- integer pipeline, register-register -------------------------
    rr_binops = [
        ("add", 0x01, IROp.ADD),
        ("sub", 0x02, IROp.SUB),
        ("and", 0x05, IROp.AND),
        ("or", 0x06, IROp.OR),
        ("xor", 0x07, IROp.XOR),
        ("andn", 0x08, IROp.ANDN),
        ("min", 0x09, IROp.MIN),
        ("max", 0x0A, IROp.MAX),
        ("shl", 0x0D, IROp.SHL),
        ("shr", 0x0E, IROp.SHRU),
        ("shra", 0x0F, IROp.SHRA),
    ]
    for name, opcode, ir_op in rr_binops:
        add(name, name, opcode, Fmt.RR, "ip", _binop_rr(ir_op), _RRR)
    add("mul", "mul", 0x04, Fmt.RR, "ip", _binop_rr(IROp.MPY), _RRR, is_mul=True)
    add("abs", "abs", 0x0B, Fmt.RR, "ip", _unop_rr(IROp.ABS), ("c:d", "a:d"))
    add("not", "not", 0x0C, Fmt.RR, "ip", _not_expand, ("c:d", "a:d"))

    rr_compares = [
        ("eq", 0x10, IROp.CMPEQ),
        ("ne", 0x11, IROp.CMPNE),
        ("lt", 0x12, IROp.CMPLT),
        ("lt.u", 0x13, IROp.CMPLTU),
        ("ge", 0x14, IROp.CMPGE),
        ("ge.u", 0x15, IROp.CMPGEU),
    ]
    for name, opcode, ir_op in rr_compares:
        add(name.replace(".", "_"), name, opcode, Fmt.RR, "ip",
            _binop_rr(ir_op), _RRR)

    # --- register moves between files (LS pipeline on TriCore) -------
    add("mov_d", "mov.d", 0x16, Fmt.RR, "ls", _mov_d_expand, ("c:d", "a:a"))
    add("mov_a", "mov.a", 0x17, Fmt.RR, "ls", _mov_a_expand, ("c:a", "a:d"))
    add("mov_aa", "mov.aa", 0x18, Fmt.RR, "ls", _mov_aa_expand, ("c:a", "a:a"))
    add("add_a", "add.a", 0x19, Fmt.RR, "ls", _binop_rr_addr(IROp.ADD), _RRA)
    add("sub_a", "sub.a", 0x1A, Fmt.RR, "ls", _binop_rr_addr(IROp.SUB), _RRA)

    # --- integer pipeline, register-constant9 ------------------------
    rc_binops = [
        ("add_c", "add", 0x20, IROp.ADD),
        ("and_c", "and", 0x21, IROp.AND),
        ("or_c", "or", 0x22, IROp.OR),
        ("xor_c", "xor", 0x23, IROp.XOR),
        ("shl_c", "shl", 0x24, IROp.SHL),
        ("shr_c", "shr", 0x25, IROp.SHRU),
        ("shra_c", "shra", 0x26, IROp.SHRA),
        ("eq_c", "eq", 0x27, IROp.CMPEQ),
        ("ne_c", "ne", 0x28, IROp.CMPNE),
        ("lt_c", "lt", 0x29, IROp.CMPLT),
        ("ge_c", "ge", 0x2A, IROp.CMPGE),
    ]
    for key, mnemonic, opcode, ir_op in rc_binops:
        add(key, mnemonic, opcode, Fmt.RC9, "ip", _binop_rc(ir_op), _RCK)

    # --- wide immediates ----------------------------------------------
    add("mov", "mov", 0x30, Fmt.RLC, "ip", _mov_expand, ("c:d", "k:imm"))
    add("mov_u", "mov.u", 0x31, Fmt.RLC, "ip", _mov_u_expand, ("c:d", "k:imm"))
    add("movh", "movh", 0x32, Fmt.RLC, "ip", _movh_expand, ("c:d", "k:imm"))
    add("addi", "addi", 0x33, Fmt.RLC, "ip", _addi_expand, _RCK)
    add("addih", "addih", 0x34, Fmt.RLC, "ip", _addih_expand, _RCK)
    add("movh_a", "movh.a", 0x35, Fmt.RLC, "ls", _movh_a_expand, ("c:a", "k:imm"))

    # --- loads/stores --------------------------------------------------
    loads = [
        ("ld_w", "ld.w", 0x40, IROp.LDW, False),
        ("ld_h", "ld.h", 0x41, IROp.LDH, False),
        ("ld_hu", "ld.hu", 0x42, IROp.LDHU, False),
        ("ld_b", "ld.b", 0x43, IROp.LDB, False),
        ("ld_bu", "ld.bu", 0x44, IROp.LDBU, False),
        ("ld_a", "ld.a", 0x45, IROp.LDW, True),
    ]
    for key, mnemonic, opcode, ir_op, addr_dest in loads:
        reg_kind = "a:a" if addr_dest else "a:d"
        add(key, mnemonic, opcode, Fmt.BO, "ls", _load(ir_op, addr_dest),
            (reg_kind, "mem"), is_load=True)
    stores = [
        ("st_w", "st.w", 0x48, IROp.STW, False),
        ("st_h", "st.h", 0x49, IROp.STH, False),
        ("st_b", "st.b", 0x4A, IROp.STB, False),
        ("st_a", "st.a", 0x4B, IROp.STW, True),
    ]
    for key, mnemonic, opcode, ir_op, addr_src in stores:
        reg_kind = "a:a" if addr_src else "a:d"
        add(key, mnemonic, opcode, Fmt.BO, "ls", _store(ir_op, addr_src),
            ("mem", reg_kind), is_store=True)
    add("lea", "lea", 0x4C, Fmt.BO, "ls", _lea_expand, ("a:a", "mem0"))

    # --- long-offset variants -----------------------------------------
    add("ld_w_bol", "ld.w", 0x50, Fmt.BOL, "ls",
        _load(IROp.LDW), ("a:d", "mem0"), is_load=True)
    add("st_w_bol", "st.w", 0x51, Fmt.BOL, "ls",
        _store(IROp.STW), ("mem0", "a:d"), is_store=True)
    add("lea_bol", "lea", 0x52, Fmt.BOL, "ls", _lea_expand, ("a:a", "mem0"))

    # --- control transfer ----------------------------------------------
    add("j", "j", 0x60, Fmt.B24, "ls", _j_expand, ("disp:label",),
        branch=BranchKind.JUMP)
    add("call", "call", 0x61, Fmt.B24, "ls", _call_expand, ("disp:label",),
        branch=BranchKind.CALL)
    cond_rr = [
        ("jeq", 0x62, IROp.CMPEQ),
        ("jne", 0x63, IROp.CMPNE),
        ("jlt", 0x64, IROp.CMPLT),
        ("jge", 0x65, IROp.CMPGE),
        ("jlt.u", 0x66, IROp.CMPLTU),
        ("jge.u", 0x67, IROp.CMPGEU),
    ]
    for name, opcode, cmp_op in cond_rr:
        add(name.replace(".", "_"), name, opcode, Fmt.BRR, "ls",
            _cond_branch_rr(cmp_op), ("a:d", "b:d", "disp:label"),
            branch=BranchKind.COND)
    cond_rc = [
        ("jeq_c", "jeq", 0x68, IROp.CMPEQ),
        ("jne_c", "jne", 0x69, IROp.CMPNE),
        ("jlt_c", "jlt", 0x6A, IROp.CMPLT),
        ("jge_c", "jge", 0x6B, IROp.CMPGE),
    ]
    for key, mnemonic, opcode, cmp_op in cond_rc:
        add(key, mnemonic, opcode, Fmt.BRC, "ls",
            _cond_branch_rc(cmp_op), ("a:d", "k:imm", "disp:label"),
            branch=BranchKind.COND)
    add("loop", "loop", 0x6C, Fmt.LOOP, "ls", _loop_expand,
        ("b:a", "disp:label"), branch=BranchKind.LOOP)
    add("ji", "ji", 0x6D, Fmt.R1, "ls", _ji_expand, ("a:a",),
        branch=BranchKind.INDIRECT)
    add("calli", "calli", 0x6E, Fmt.R1, "ls", _calli_expand, ("a:a",),
        branch=BranchKind.CALL_INDIRECT)
    add("ret", "ret", 0x70, Fmt.SYS, "ls", _ret_expand, (),
        branch=BranchKind.RET)
    add("halt", "halt", 0x71, Fmt.SYS, "ls", _halt_expand, ())
    add("nop", "nop", 0x72, Fmt.SYS, "ip", _nop_expand, ())
    add("debug", "debug", 0x73, Fmt.SYS, "ls", _debug_expand, ())

    # --- 16-bit compact forms ------------------------------------------
    add("mov16", "mov16", 0x01, Fmt.SRR, "ip", _mov16_expand, ("a:d", "b:d"))
    add("add16", "add16", 0x02, Fmt.SRR, "ip", _add16_expand, ("a:d", "b:d"))
    add("sub16", "sub16", 0x03, Fmt.SRR, "ip", _sub16_expand, ("a:d", "b:d"))
    add("mov16c", "mov16", 0x04, Fmt.SRC, "ip", _mov16c_expand, ("a:d", "k:imm"))
    add("add16c", "add16", 0x05, Fmt.SRC, "ip", _add16c_expand, ("a:d", "k:imm"))
    add("jz16", "jz16", 0x08, Fmt.SBR, "ls", _jz16_expand, ("disp:label",),
        branch=BranchKind.COND)
    add("jnz16", "jnz16", 0x09, Fmt.SBR, "ls", _jnz16_expand, ("disp:label",),
        branch=BranchKind.COND)
    add("j16", "j16", 0x0A, Fmt.SBR, "ls", _j16_expand, ("disp:label",),
        branch=BranchKind.JUMP)
    add("ret16", "ret16", 0x0C, Fmt.SSYS, "ls", _ret_expand, (),
        branch=BranchKind.RET)
    add("nop16", "nop16", 0x0D, Fmt.SSYS, "ip", _nop_expand, ())

    return specs


SPECS: tuple[InstructionSpec, ...] = tuple(_build_specs())

SPEC_BY_KEY: dict[str, InstructionSpec] = {spec.key: spec for spec in SPECS}

#: 32-bit opcode (7-bit) -> spec, and 16-bit opcode (6-bit) -> spec.
LONG_OPCODE_TABLE: dict[int, InstructionSpec] = {
    spec.opcode: spec for spec in SPECS if spec.width == 4
}
SHORT_OPCODE_TABLE: dict[int, InstructionSpec] = {
    spec.opcode: spec for spec in SPECS if spec.width == 2
}

#: mnemonic -> list of candidate specs (assembler resolves by operands).
SPECS_BY_MNEMONIC: dict[str, list[InstructionSpec]] = {}
for _spec in SPECS:
    SPECS_BY_MNEMONIC.setdefault(_spec.mnemonic, []).append(_spec)


def _check_tables() -> None:
    if len(LONG_OPCODE_TABLE) != sum(1 for s in SPECS if s.width == 4):
        raise AssertionError("duplicate 32-bit opcode in spec table")
    if len(SHORT_OPCODE_TABLE) != sum(1 for s in SPECS if s.width == 2):
        raise AssertionError("duplicate 16-bit opcode in spec table")
    if len(SPEC_BY_KEY) != len(SPECS):
        raise AssertionError("duplicate spec key in spec table")


_check_tables()
