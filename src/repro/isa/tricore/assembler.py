"""Two-pass assembler for the TriCore-like ISA.

Produces fully linked :class:`~repro.objfile.elf.ObjectFile` images:
section base addresses are fixed by the architecture memory map (or
``.org``), so the assembler resolves every reference itself and no
relocations are needed.

Syntax
------
* ``label:`` definitions, ``; comment`` or ``# comment``
* instructions: ``add d3, d1, d2`` — operand order per instruction
* memory operands: ``[a2]4`` base+offset, ``[a2+]4`` post-increment,
  ``[+a2]4`` pre-increment (offset optional, default 0)
* expressions: decimal/hex literals, symbols, ``+``/``-``, and the
  prefixes ``hi:expr`` / ``lo:expr`` splitting a 32-bit value so that
  ``movh… hi:x`` followed by a sign-extended 16-bit ``lo:x`` add
  reconstructs ``x`` exactly
* directives: ``.text``, ``.data``, ``.org``, ``.global``, ``.entry``,
  ``.word``, ``.half``, ``.byte``, ``.space``, ``.align``, ``.asciz``,
  ``.equ``
* macros: ``li dX, expr`` (load 32-bit immediate), ``la aX, expr``
  (load 32-bit address)
* long-offset forms may be forced with ``ld.w.l`` / ``st.w.l`` /
  ``lea.l``; the plain mnemonics select the short form when the offset
  is a literal that fits
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.arch.model import MemoryMap
from repro.errors import AssemblerError, EncodingError
from repro.isa.tricore.encoding import encode
from repro.isa.tricore.instructions import (
    MODE_BASE_OFFSET,
    MODE_POST_INCREMENT,
    MODE_PRE_INCREMENT,
    SPEC_BY_KEY,
    SPECS_BY_MNEMONIC,
    Fmt,
    InstructionSpec,
)
from repro.isa.tricore.registers import is_areg, is_dreg, parse_reg
from repro.objfile.elf import (
    SEC_EXEC,
    SEC_WRITE,
    ObjectFile,
    Section,
    Symbol,
    SymbolKind,
)
from repro.utils.bits import fits_signed, s16, u32

#: encoding of ``nop16``, used to pad executable sections.
_NOP16 = SPEC_BY_KEY["nop16"].opcode << 1

#: explicit-mnemonic aliases: mnemonic -> (spec key, implied fields)
_ALIASES: dict[str, tuple[str, dict[str, int]]] = {
    "ld.w.l": ("ld_w_bol", {}),
    "st.w.l": ("st_w_bol", {}),
    "lea.l": ("lea_bol", {}),
    "jz": ("jeq_c", {"k": 0}),
    "jnz": ("jne_c", {"k": 0}),
}

_TOKEN_RE = re.compile(r"\s*([A-Za-z_.][\w.]*|0[xX][0-9a-fA-F]+|\d+|[:+\-\[\](),!])")


@dataclass
class _Operand:
    """A parsed operand: register, memory reference, or expression."""

    kind: str  # 'd', 'a', 'mem', 'expr'
    reg: int | None = None  # unified register index for 'd'/'a'
    base: int | None = None  # unified a-reg index for 'mem'
    mode: int = MODE_BASE_OFFSET
    expr: str | None = None  # offset / immediate expression text


@dataclass
class _Item:
    """One pass-1 statement awaiting pass-2 encoding."""

    kind: str  # 'instr', 'word', 'half', 'byte', 'space', 'bytes'
    section: str
    addr: int
    size: int
    line: int
    spec: InstructionSpec | None = None
    operands: list[_Operand] = field(default_factory=list)
    implied: dict[str, int] = field(default_factory=dict)
    exprs: list[str] = field(default_factory=list)
    raw: bytes = b""


class Assembler:
    """Two-pass assembler producing linked object files."""

    def __init__(self, memory: MemoryMap | None = None) -> None:
        self._memory = memory or MemoryMap()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def assemble(self, source: str) -> ObjectFile:
        """Assemble *source* text into an object file."""
        items, symbols, entry_name, globals_ = self._pass1(source)
        return self._pass2(items, symbols, entry_name, globals_)

    # ------------------------------------------------------------------
    # pass 1: sizing, addresses, symbol table
    # ------------------------------------------------------------------

    def _pass1(self, source: str):
        section = ".text"
        counters = {
            ".text": self._memory.code_base,
            ".data": self._memory.data_base,
        }
        items: list[_Item] = []
        symbols: dict[str, int] = {}
        sym_sections: dict[str, str] = {}
        globals_: set[str] = set()
        entry_name: str | None = None

        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line).strip()
            while line:
                match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:", line)
                if not match:
                    break
                name = match.group(1)
                if name in symbols:
                    raise AssemblerError(f"duplicate label {name!r}", line_no)
                symbols[name] = counters[section]
                sym_sections[name] = section
                line = line[match.end():].strip()
            if not line:
                continue

            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            rest = rest.strip()

            if mnemonic.startswith("."):
                consumed = self._directive_pass1(
                    mnemonic, rest, section, counters, items, symbols, line_no
                )
                if consumed is not None:
                    section, entry, glob = consumed
                    if entry:
                        entry_name = entry
                    if glob:
                        globals_.add(glob)
                continue

            if mnemonic == "li":
                items.extend(self._expand_li(rest, section, counters, line_no))
                continue
            if mnemonic == "la":
                items.extend(self._expand_la(rest, section, counters, line_no))
                continue

            operands = self._parse_operands(rest, line_no)
            spec, implied = self._select_spec(mnemonic, operands, line_no)
            addr = counters[section]
            if addr % 2:
                raise AssemblerError("misaligned instruction", line_no)
            items.append(
                _Item(
                    kind="instr",
                    section=section,
                    addr=addr,
                    size=spec.width,
                    line=line_no,
                    spec=spec,
                    operands=operands,
                    implied=dict(implied),
                )
            )
            counters[section] = addr + spec.width

        return items, (symbols, sym_sections), entry_name, globals_

    def _directive_pass1(self, mnemonic, rest, section, counters, items,
                         symbols, line_no):
        """Handle a directive; returns (section, entry, global) or None."""
        if mnemonic in (".text", ".data"):
            if rest:
                raise AssemblerError(f"{mnemonic} takes no operand", line_no)
            return (mnemonic, None, None)
        if mnemonic == ".org":
            target = self._literal(rest, line_no)
            current = counters[section]
            if target < current:
                raise AssemblerError(".org may not move backwards", line_no)
            if target > current:
                pad = target - current
                fill = self._pad_bytes(section, pad)
                items.append(_Item("bytes", section, current, pad, line_no,
                                   raw=fill))
                counters[section] = target
            return (section, None, None)
        if mnemonic == ".global":
            name = rest.strip()
            if not name:
                raise AssemblerError(".global needs a symbol name", line_no)
            return (section, None, name)
        if mnemonic == ".entry":
            name = rest.strip()
            if not name:
                raise AssemblerError(".entry needs a symbol name", line_no)
            return (section, name, None)
        if mnemonic == ".equ":
            name, _, expr = rest.partition(",")
            name = name.strip()
            if not name:
                raise AssemblerError(".equ needs a name and a value", line_no)
            symbols[name] = self._literal(expr.strip(), line_no)
            return (section, None, None)
        if mnemonic in (".word", ".half", ".byte"):
            width = {".word": 4, ".half": 2, ".byte": 1}[mnemonic]
            exprs = [part.strip() for part in rest.split(",") if part.strip()]
            if not exprs:
                raise AssemblerError(f"{mnemonic} needs at least one value",
                                     line_no)
            addr = counters[section]
            size = width * len(exprs)
            items.append(_Item(mnemonic[1:], section, addr, size, line_no,
                               exprs=exprs))
            counters[section] = addr + size
            return (section, None, None)
        if mnemonic == ".space":
            count = self._literal(rest, line_no)
            if count < 0:
                raise AssemblerError(".space needs a non-negative size", line_no)
            addr = counters[section]
            items.append(_Item("bytes", section, addr, count, line_no,
                               raw=bytes(count)))
            counters[section] = addr + count
            return (section, None, None)
        if mnemonic == ".align":
            alignment = self._literal(rest, line_no)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblerError(".align needs a power of two", line_no)
            addr = counters[section]
            target = (addr + alignment - 1) & ~(alignment - 1)
            if target > addr:
                pad = target - addr
                items.append(_Item("bytes", section, addr, pad, line_no,
                                   raw=self._pad_bytes(section, pad)))
                counters[section] = target
            return (section, None, None)
        if mnemonic == ".asciz":
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError('.asciz needs a quoted string', line_no)
            data = text[1:-1].encode("utf-8").decode("unicode_escape")
            blob = data.encode("latin-1") + b"\x00"
            addr = counters[section]
            items.append(_Item("bytes", section, addr, len(blob), line_no,
                               raw=blob))
            counters[section] = addr + len(blob)
            return (section, None, None)
        raise AssemblerError(f"unknown directive {mnemonic!r}", line_no)

    def _pad_bytes(self, section: str, count: int) -> bytes:
        """Padding: nop16 in text (decodable), zeros elsewhere."""
        if section == ".text":
            if count % 2:
                raise AssemblerError("odd padding in .text")
            return _NOP16.to_bytes(2, "little") * (count // 2)
        return bytes(count)

    # ------------------------------------------------------------------
    # macros
    # ------------------------------------------------------------------

    def _expand_li(self, rest: str, section: str, counters, line_no):
        """``li dX, expr``: materialize a 32-bit immediate."""
        operands = self._parse_operands(rest, line_no)
        if len(operands) != 2 or operands[0].kind != "d" \
                or operands[1].kind != "expr":
            raise AssemblerError("li needs: li dX, expression", line_no)
        dest = operands[0].reg
        expr = operands[1].expr
        literal = self._try_literal(expr)
        items: list[_Item] = []
        addr = counters[section]
        if literal is not None and fits_signed(literal, 16):
            items.append(self._instr_item("mov", section, addr, line_no,
                                          {"c": dest, "k": literal}))
        elif literal is not None and 0 <= literal <= 0xFFFF:
            items.append(self._instr_item("mov_u", section, addr, line_no,
                                          {"c": dest, "k": literal}))
        else:
            hi = _Operand(kind="expr", expr=f"hi:({expr})")
            lo = _Operand(kind="expr", expr=f"lo:({expr})")
            items.append(
                _Item("instr", section, addr, 4, line_no,
                      spec=SPEC_BY_KEY["movh"],
                      operands=[_Operand("d", reg=dest), hi],
                      implied={}))
            items.append(
                _Item("instr", section, addr + 4, 4, line_no,
                      spec=SPEC_BY_KEY["addi"],
                      operands=[_Operand("d", reg=dest),
                                _Operand("d", reg=dest), lo],
                      implied={}))
        for item in items:
            counters[section] += item.size
        return items

    def _expand_la(self, rest: str, section: str, counters, line_no):
        """``la aX, expr``: materialize a 32-bit address."""
        operands = self._parse_operands(rest, line_no)
        if len(operands) != 2 or operands[0].kind != "a" \
                or operands[1].kind != "expr":
            raise AssemblerError("la needs: la aX, expression", line_no)
        dest = operands[0].reg
        expr = operands[1].expr
        addr = counters[section]
        hi = _Operand(kind="expr", expr=f"hi:({expr})")
        lo_mem = _Operand(kind="mem", base=dest, mode=MODE_BASE_OFFSET,
                          expr=f"lo:({expr})")
        items = [
            _Item("instr", section, addr, 4, line_no,
                  spec=SPEC_BY_KEY["movh_a"],
                  operands=[_Operand("a", reg=dest), hi], implied={}),
            _Item("instr", section, addr + 4, 4, line_no,
                  spec=SPEC_BY_KEY["lea_bol"],
                  operands=[_Operand("a", reg=dest), lo_mem], implied={}),
        ]
        counters[section] += 8
        return items

    def _instr_item(self, key: str, section: str, addr: int, line_no: int,
                    fields: dict[str, int]) -> _Item:
        """A fully resolved instruction item (used by macros)."""
        spec = SPEC_BY_KEY[key]
        return _Item("instr", section, addr, spec.width, line_no, spec=spec,
                     operands=[], implied=dict(fields))

    # ------------------------------------------------------------------
    # operand parsing and spec selection
    # ------------------------------------------------------------------

    def _strip_comment(self, line: str) -> str:
        for marker in (";", "#", "//"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        return line.replace("\t", " ")

    def _split_operands(self, text: str, line_no: int) -> list[str]:
        """Split on commas not inside brackets."""
        parts: list[str] = []
        depth = 0
        current = ""
        for char in text:
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth < 0:
                    raise AssemblerError("unbalanced ']'", line_no)
            if char == "," and depth == 0:
                parts.append(current.strip())
                current = ""
            else:
                current += char
        if current.strip():
            parts.append(current.strip())
        if depth != 0:
            raise AssemblerError("unbalanced '['", line_no)
        return parts

    _REG_RE = re.compile(r"^[da](1[0-5]|[0-9])$")
    _MEM_RE = re.compile(r"^\[\s*(\+?)\s*(a(?:1[0-5]|[0-9]))\s*(\+?)\s*\]\s*(.*)$")

    def _parse_operands(self, text: str, line_no: int) -> list[_Operand]:
        operands: list[_Operand] = []
        if not text.strip():
            return operands
        for part in self._split_operands(text, line_no):
            lowered = part.lower()
            if self._REG_RE.match(lowered):
                reg = parse_reg(lowered, line_no)
                operands.append(
                    _Operand("d" if is_dreg(reg) else "a", reg=reg))
                continue
            mem = self._MEM_RE.match(part)
            if mem:
                pre, base_name, post, off_text = mem.groups()
                if pre and post:
                    raise AssemblerError(
                        "memory operand cannot be both pre and post increment",
                        line_no)
                mode = MODE_BASE_OFFSET
                if pre:
                    mode = MODE_PRE_INCREMENT
                elif post:
                    mode = MODE_POST_INCREMENT
                base = parse_reg(base_name, line_no)
                if not is_areg(base):
                    raise AssemblerError(
                        f"memory base must be an address register, "
                        f"got {base_name!r}", line_no)
                operands.append(
                    _Operand("mem", base=base, mode=mode,
                             expr=off_text.strip() or "0"))
                continue
            operands.append(_Operand("expr", expr=part.strip()))
        return operands

    def _select_spec(self, mnemonic: str, operands: list[_Operand],
                     line_no: int) -> tuple[InstructionSpec, dict[str, int]]:
        """Choose the instruction spec matching mnemonic + operand shape."""
        implied: dict[str, int] = {}
        if mnemonic in _ALIASES:
            key, implied = _ALIASES[mnemonic]
            spec = SPEC_BY_KEY[key]
            if self._shape_matches(spec, operands, implied):
                return spec, implied
            raise AssemblerError(
                f"operands do not match {mnemonic!r}", line_no)
        candidates = SPECS_BY_MNEMONIC.get(mnemonic)
        if not candidates:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
        matches = [
            spec for spec in candidates
            if self._shape_matches(spec, operands, {})
        ]
        if not matches:
            raise AssemblerError(
                f"operands do not match any form of {mnemonic!r}", line_no)
        if len(matches) > 1:
            matches = [self._prefer(matches, operands, line_no)]
        return matches[0], {}

    def _shape_matches(self, spec: InstructionSpec,
                       operands: list[_Operand],
                       implied: dict[str, int]) -> bool:
        tokens = [tok for tok in spec.syntax
                  if tok.split(":")[0] not in implied]
        if len(tokens) != len(operands):
            return False
        for token, operand in zip(tokens, operands):
            if token in ("mem", "mem0"):
                if operand.kind != "mem":
                    return False
                if token == "mem0" and operand.mode != MODE_BASE_OFFSET:
                    return False
                continue
            _field, kind = token.split(":")
            if kind == "d" and operand.kind != "d":
                return False
            if kind == "a" and operand.kind != "a":
                return False
            if kind in ("imm", "label") and operand.kind != "expr":
                return False
        return True

    def _prefer(self, matches: list[InstructionSpec],
                operands: list[_Operand], line_no: int) -> InstructionSpec:
        """Resolve BO-vs-BOL ambiguity: short form when the literal fits."""
        short = [m for m in matches if m.fmt == Fmt.BO]
        long_ = [m for m in matches if m.fmt == Fmt.BOL]
        if short and long_:
            mem = next((op for op in operands if op.kind == "mem"), None)
            if mem is not None:
                if mem.mode != MODE_BASE_OFFSET:
                    return short[0]
                literal = self._try_literal(mem.expr)
                if literal is not None and fits_signed(literal, 10):
                    return short[0]
                return long_[0]
        raise AssemblerError(
            f"ambiguous instruction forms: {[m.key for m in matches]}", line_no)

    # ------------------------------------------------------------------
    # pass 2: encoding
    # ------------------------------------------------------------------

    def _pass2(self, items: list[_Item], symbol_info, entry_name, globals_):
        symbols, sym_sections = symbol_info
        chunks: dict[str, list[tuple[int, bytes]]] = {".text": [], ".data": []}

        for item in items:
            if item.kind == "bytes":
                chunks[item.section].append((item.addr, item.raw))
            elif item.kind in ("word", "half", "byte"):
                width = {"word": 4, "half": 2, "byte": 1}[item.kind]
                blob = bytearray()
                for expr in item.exprs:
                    value = self._evaluate(expr, symbols, item.line)
                    blob += u32(value).to_bytes(4, "little")[:width]
                chunks[item.section].append((item.addr, bytes(blob)))
            elif item.kind == "instr":
                encoded = self._encode_item(item, symbols)
                chunks[item.section].append((item.addr, encoded))
            else:  # pragma: no cover - defensive
                raise AssemblerError(f"unknown item kind {item.kind}")

        obj = ObjectFile()
        flags = {".text": SEC_EXEC, ".data": SEC_WRITE}
        for name in (".text", ".data"):
            parts = sorted(chunks[name])
            if not parts:
                continue
            start = min(addr for addr, _ in parts)
            end = max(addr + len(blob) for addr, blob in parts)
            image = bytearray(end - start)
            for addr, blob in parts:
                image[addr - start: addr - start + len(blob)] = blob
            obj.sections.append(
                Section(name=name, addr=start, data=bytes(image),
                        flags=flags[name]))

        for name, addr in symbols.items():
            section = sym_sections.get(name)
            kind = SymbolKind.NONE
            if section == ".text" and name in globals_:
                # Only exported text symbols are functions: they may be
                # reached indirectly (calli/ji), so analyses treat them
                # as entry points with unknown register state.  Local
                # labels stay transparent to the dataflow.
                kind = SymbolKind.FUNC
            elif section == ".data":
                kind = SymbolKind.OBJECT
            obj.add_symbol(Symbol(name=name, addr=u32(addr), kind=kind))
        for name in globals_:
            if name not in obj.symbols:
                raise AssemblerError(f".global of undefined symbol {name!r}")

        if entry_name is not None:
            obj.entry = obj.symbol_addr(entry_name)
        elif "_start" in obj.symbols:
            obj.entry = obj.symbols["_start"].addr
        elif obj.has_section(".text"):
            obj.entry = obj.section(".text").addr
        return obj.validate()

    def _encode_item(self, item: _Item, symbols: dict[str, int]) -> bytes:
        spec = item.spec
        assert spec is not None
        fields: dict[str, int] = dict(item.implied)
        tokens = [tok for tok in spec.syntax
                  if tok.split(":")[0] not in item.implied]
        for token, operand in zip(tokens, item.operands):
            if token in ("mem", "mem0"):
                assert operand.base is not None
                fields["b"] = operand.base - 16
                offset = self._evaluate(operand.expr, symbols, item.line)
                fields["off"] = offset
                if "mode" in {f[0] for f in
                              self._format_fields(spec)}:
                    fields["mode"] = operand.mode
                continue
            name, kind = token.split(":")
            if kind in ("d", "a"):
                reg = operand.reg
                assert reg is not None
                fields[name] = reg if kind == "d" else reg - 16
            elif kind == "imm":
                fields[name] = self._evaluate(operand.expr, symbols, item.line)
            elif kind == "label":
                target = self._evaluate(operand.expr, symbols, item.line)
                delta = target - item.addr
                if delta % 2:
                    raise AssemblerError(
                        f"branch target {target:#x} not halfword aligned",
                        item.line)
                fields[name] = delta // 2
        # Format fields the syntax does not mention (the unused `a` of the
        # RLC move forms, `mode` of plain base+offset operands) encode as 0.
        for name, *_ in self._format_fields(spec):
            fields.setdefault(name, 0)
        # The RLC k16 field stores a raw bit pattern: `mov` sign-extends,
        # `mov.u` zero-extends.  Accept either writing convention here.
        if spec.fmt == Fmt.RLC:
            k = fields["k"]
            if not -0x8000 <= k <= 0xFFFF:
                raise AssemblerError(
                    f"immediate {k} does not fit in 16 bits", item.line)
            fields["k"] = k & 0xFFFF
        try:
            return encode(spec, fields)
        except EncodingError as exc:
            raise AssemblerError(str(exc), item.line) from exc

    @staticmethod
    def _format_fields(spec: InstructionSpec):
        from repro.isa.tricore.instructions import FORMAT_FIELDS

        return FORMAT_FIELDS[spec.fmt]

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _literal(self, text: str, line_no: int) -> int:
        """Evaluate an expression that may not reference symbols."""
        value = self._try_literal(text)
        if value is None:
            raise AssemblerError(
                f"expected a literal expression, got {text!r}", line_no)
        return value

    def _try_literal(self, text: str) -> int | None:
        try:
            return self._evaluate(text, {}, None)
        except AssemblerError:
            return None

    def _evaluate(self, text: str, symbols: dict[str, int],
                  line_no: int | None) -> int:
        """Evaluate an operand expression to an integer."""
        parser = _ExprParser(text, symbols, line_no)
        value = parser.parse()
        return value


class _ExprParser:
    """Recursive-descent parser for operand expressions."""

    def __init__(self, text: str, symbols: dict[str, int],
                 line_no: int | None) -> None:
        self._text = text
        self._symbols = symbols
        self._line = line_no
        self._pos = 0

    def parse(self) -> int:
        value = self._sum()
        self._skip_ws()
        if self._pos != len(self._text):
            raise AssemblerError(
                f"trailing characters in expression {self._text!r}", self._line)
        return value

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _sum(self) -> int:
        value = self._term()
        while True:
            self._skip_ws()
            if self._pos < len(self._text) and self._text[self._pos] in "+-":
                op = self._text[self._pos]
                self._pos += 1
                rhs = self._term()
                value = value + rhs if op == "+" else value - rhs
            else:
                return value

    def _term(self) -> int:
        self._skip_ws()
        if self._pos >= len(self._text):
            raise AssemblerError(
                f"unexpected end of expression {self._text!r}", self._line)
        char = self._text[self._pos]
        if char == "-":
            self._pos += 1
            return -self._term()
        if char == "(":
            self._pos += 1
            value = self._sum()
            self._skip_ws()
            if self._pos >= len(self._text) or self._text[self._pos] != ")":
                raise AssemblerError(
                    f"missing ')' in expression {self._text!r}", self._line)
            self._pos += 1
            return value
        match = re.match(r"(hi|lo):", self._text[self._pos:])
        if match:
            self._pos += match.end()
            inner = self._term()
            if match.group(1) == "hi":
                return ((inner + 0x8000) >> 16) & 0xFFFF
            return s16(inner & 0xFFFF)
        match = re.match(r"0[xX][0-9a-fA-F]+|\d+", self._text[self._pos:])
        if match:
            self._pos += match.end()
            return int(match.group(0), 0)
        match = re.match(r"[A-Za-z_.$][\w.$]*", self._text[self._pos:])
        if match:
            name = match.group(0)
            self._pos += match.end()
            if name not in self._symbols:
                raise AssemblerError(f"undefined symbol {name!r}", self._line)
            return self._symbols[name]
        raise AssemblerError(
            f"cannot parse expression {self._text!r}", self._line)


def assemble(source: str, memory: MemoryMap | None = None) -> ObjectFile:
    """Convenience wrapper: assemble *source* with the default memory map."""
    return Assembler(memory).assemble(source)
