"""Register model of the TriCore-like source processor.

The architecture has sixteen 32-bit data registers ``d0``–``d15`` and
sixteen 32-bit address registers ``a0``–``a15``.  In the unified IR
register numbering, data registers occupy 0–15 and address registers
16–31 (see :mod:`repro.translator.ir`).

Calling convention used by the minic compiler and runtime (documented
simplification of the TriCore EABI — there is no hardware context save
in this subset):

* ``d2`` — integer return value
* ``d4``–``d7`` — integer arguments
* ``a4``–``a7`` — pointer arguments
* ``a10`` — stack pointer
* ``a11`` — return address (written by ``call``/``calli``)
* ``d15`` — implicit condition register of the 16-bit branch forms
"""

from __future__ import annotations

from repro.errors import AssemblerError

NUM_DATA_REGS = 16
NUM_ADDR_REGS = 16
NUM_REGS = NUM_DATA_REGS + NUM_ADDR_REGS

# Unified IR indices of notable registers.
REG_RETVAL = 2  # d2
REG_ARG0 = 4  # d4
REG_COND16 = 15  # d15, implicit operand of jz16/jnz16
REG_SP = 16 + 10  # a10
REG_RA = 16 + 11  # a11


def dreg(index: int) -> int:
    """Unified IR index of data register ``d<index>``."""
    if not 0 <= index < NUM_DATA_REGS:
        raise ValueError(f"data register index out of range: {index}")
    return index


def areg(index: int) -> int:
    """Unified IR index of address register ``a<index>``."""
    if not 0 <= index < NUM_ADDR_REGS:
        raise ValueError(f"address register index out of range: {index}")
    return NUM_DATA_REGS + index


def is_dreg(reg: int) -> bool:
    return 0 <= reg < NUM_DATA_REGS


def is_areg(reg: int) -> bool:
    return NUM_DATA_REGS <= reg < NUM_REGS


def reg_name(reg: int) -> str:
    """Assembly name of a unified register index."""
    if is_dreg(reg):
        return f"d{reg}"
    if is_areg(reg):
        return f"a{reg - NUM_DATA_REGS}"
    raise ValueError(f"not an architectural register: {reg}")


def parse_reg(text: str, line: int | None = None) -> int:
    """Parse ``d<n>`` or ``a<n>`` into a unified register index."""
    text = text.strip().lower()
    if len(text) >= 2 and text[0] in "da" and text[1:].isdigit():
        index = int(text[1:])
        if text[0] == "d" and 0 <= index < NUM_DATA_REGS:
            return index
        if text[0] == "a" and 0 <= index < NUM_ADDR_REGS:
            return NUM_DATA_REGS + index
    raise AssemblerError(f"invalid register name: {text!r}", line)


def parse_dreg(text: str, line: int | None = None) -> int:
    """Parse a data-register name, rejecting address registers."""
    reg = parse_reg(text, line)
    if not is_dreg(reg):
        raise AssemblerError(f"expected data register, got {text!r}", line)
    return reg


def parse_areg(text: str, line: int | None = None) -> int:
    """Parse an address-register name (returned as unified index)."""
    reg = parse_reg(text, line)
    if not is_areg(reg):
        raise AssemblerError(f"expected address register, got {text!r}", line)
    return reg
